#include "core/anf_system.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>

#include "anf/anf_parser.h"
#include "test_util.h"
#include "util/rng.h"

namespace bosphorus::core {
namespace {

using anf::parse_polynomial;
using anf::parse_system_from_string;
using anf::Polynomial;

AnfSystem make(const std::string& text, size_t num_vars) {
    auto sys = parse_system_from_string(text);
    return AnfSystem(sys.polynomials, std::max(num_vars, sys.num_vars));
}

TEST(AnfSystem, AssignsFromUnitPolynomials) {
    // x1 = 0 (from "x1"), x2 = 1 (from "x2 + 1").
    AnfSystem sys = make("x1\nx2 + 1\n", 2);
    EXPECT_TRUE(sys.okay());
    EXPECT_EQ(sys.resolve(0).kind, VarState::Kind::kFixed);
    EXPECT_FALSE(sys.resolve(0).value);
    EXPECT_TRUE(sys.resolve(1).value);
    EXPECT_TRUE(sys.equations().empty());
}

TEST(AnfSystem, MonomialFactSetsAllOnes) {
    // x1*x2*x3 + 1 = 0 forces x1 = x2 = x3 = 1 (paper section II).
    AnfSystem sys = make("x1*x2*x3 + 1\n", 3);
    EXPECT_TRUE(sys.okay());
    for (anf::Var v = 0; v < 3; ++v) {
        EXPECT_EQ(sys.resolve(v).kind, VarState::Kind::kFixed);
        EXPECT_TRUE(sys.resolve(v).value);
    }
}

TEST(AnfSystem, EquivalencePropagation) {
    // x1 + x2 = 0 makes them equal; fixing one fixes the other.
    AnfSystem sys = make("x1 + x2\n", 2);
    EXPECT_TRUE(sys.okay());
    EXPECT_EQ(sys.num_replaced(), 1u);
    sys.add_fact(parse_polynomial("x1 + 1"));
    EXPECT_TRUE(sys.resolve(0).value);
    EXPECT_TRUE(sys.resolve(1).value);
}

TEST(AnfSystem, AntiEquivalencePropagation) {
    AnfSystem sys = make("x1 + x2 + 1\n", 2);
    sys.add_fact(parse_polynomial("x1"));  // x1 = 0
    EXPECT_EQ(sys.resolve(0).kind, VarState::Kind::kFixed);
    EXPECT_FALSE(sys.resolve(0).value);
    EXPECT_TRUE(sys.resolve(1).value) << "x2 = !x1 = 1";
}

TEST(AnfSystem, ContradictionDetected) {
    AnfSystem sys = make("x1\nx1 + 1\n", 1);
    EXPECT_FALSE(sys.okay());
}

TEST(AnfSystem, EquivalenceCycleContradiction) {
    // x1 = x2, x2 = x3, x1 = !x3 is unsatisfiable.
    AnfSystem sys = make("x1 + x2\nx2 + x3\nx1 + x3 + 1\n", 3);
    EXPECT_FALSE(sys.okay());
}

TEST(AnfSystem, EquivalenceCycleConsistent) {
    AnfSystem sys = make("x1 + x2\nx2 + x3\nx1 + x3\n", 3);
    EXPECT_TRUE(sys.okay());
    EXPECT_EQ(sys.num_replaced(), 2u);
}

TEST(AnfSystem, PropagationCascades) {
    // Fixing x1 simplifies x1*x2 + x3 to x3 -> x3 = 0... with x1 = 1.
    AnfSystem sys = make("x1 + 1\nx1*x2 + x3\n", 3);
    EXPECT_TRUE(sys.okay());
    // x1 = 1 reduces the second poly to x2 + x3: an equivalence.
    EXPECT_EQ(sys.num_fixed(), 1u);
    EXPECT_EQ(sys.num_replaced(), 1u);
}

TEST(AnfSystem, PaperExampleSectionIIE) {
    // The worked example (1): after XL facts are added, propagation alone
    // reaches the unique solution x1..x4 = 1, x5 = 0.
    AnfSystem sys = make(
        "x1*x2 + x3 + x4 + 1\n"
        "x1*x2*x3 + x1 + x3 + 1\n"
        "x1*x3 + x3*x4*x5 + x3\n"
        "x2*x3 + x3*x5 + 1\n"
        "x2*x3 + x5 + 1\n",
        5);
    ASSERT_TRUE(sys.okay());
    // Add the facts the paper says XL learns.
    for (const char* f :
         {"x2*x3*x4 + 1", "x1*x3*x4 + 1", "x1 + x5 + 1", "x1 + x4", "x3 + 1",
          "x1 + x2"}) {
        sys.add_fact(parse_polynomial(f));
    }
    ASSERT_TRUE(sys.okay());
    const std::vector<bool> expect{true, true, true, true, false};
    for (anf::Var v = 0; v < 5; ++v) {
        const VarState st = sys.resolve(v);
        EXPECT_EQ(st.kind, VarState::Kind::kFixed) << "x" << v + 1;
        EXPECT_EQ(st.value, expect[v]) << "x" << v + 1;
    }
}

TEST(AnfSystem, AddFactDeduplicates) {
    AnfSystem sys = make("x1*x2 + x3\n", 3);
    EXPECT_FALSE(sys.add_fact(parse_polynomial("x1*x2 + x3")))
        << "existing polynomial is not a new fact";
    EXPECT_FALSE(sys.add_fact(Polynomial()));
}

TEST(AnfSystem, CheckSolutionUsesOriginals) {
    AnfSystem sys = make("x1 + x2\nx1*x2 + 1\n", 2);
    EXPECT_TRUE(sys.check_solution({true, true}));
    EXPECT_FALSE(sys.check_solution({true, false}));
    EXPECT_FALSE(sys.check_solution({false, false}));
}

TEST(AnfSystem, ExtendAssignment) {
    AnfSystem sys = make("x1 + 1\nx2 + x3\n", 3);
    // x1 fixed true; x2 == x3 (one replaced). Free values for the root.
    const auto full = sys.extend_assignment({false, true, true});
    EXPECT_TRUE(full[0]);
    EXPECT_EQ(full[1], full[2]);
}

TEST(AnfSystem, ToPolynomialsRoundTripsSolutions) {
    // The processed system must have the same solutions as the input.
    const std::string text =
        "x1*x2 + x3\n"
        "x2 + x4 + 1\n"
        "x1 + x2\n";
    const auto parsed = parse_system_from_string(text);
    AnfSystem sys(parsed.polynomials, 4);
    ASSERT_TRUE(sys.okay());
    const auto before = testutil::anf_models(parsed.polynomials, 4);
    const auto after = testutil::anf_models(sys.to_polynomials(), 4);
    EXPECT_EQ(before, after);
}

// Property sweep: propagation preserves the solution set exactly.
class AnfSystemRandom : public ::testing::TestWithParam<int> {};

TEST_P(AnfSystemRandom, PropagationPreservesSolutions) {
    Rng rng(GetParam());
    const unsigned nv = 4 + rng.below(4);
    std::vector<Polynomial> polys;
    const size_t np = 3 + rng.below(6);
    for (size_t i = 0; i < np; ++i) {
        std::vector<anf::Monomial> monos;
        const size_t nm = 1 + rng.below(4);
        for (size_t j = 0; j < nm; ++j) {
            std::vector<anf::Var> vars;
            const size_t d = rng.below(3);
            for (size_t l = 0; l < d; ++l)
                vars.push_back(static_cast<anf::Var>(rng.below(nv)));
            monos.emplace_back(std::move(vars));
        }
        polys.emplace_back(std::move(monos));
    }
    const auto before = testutil::anf_models(polys, nv);
    AnfSystem sys(polys, nv);
    if (!sys.okay()) {
        EXPECT_TRUE(before.empty())
            << "propagation claimed UNSAT on satisfiable system";
        return;
    }
    const auto after = testutil::anf_models(sys.to_polynomials(), nv);
    EXPECT_EQ(before, after);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnfSystemRandom, ::testing::Range(0, 40));

// ---- snapshot / restore (the Session push/pop substrate) -------------------

/// Everything observable about a system's state, for exact-rewind checks.
struct Fingerprint {
    std::vector<Polynomial> equations;
    std::vector<Polynomial> processed;
    size_t num_fixed;
    size_t num_replaced;
    bool ok;

    bool operator==(const Fingerprint&) const = default;
};

Fingerprint fingerprint(const AnfSystem& sys) {
    Fingerprint f;
    f.equations = sys.equations();
    std::sort(f.equations.begin(), f.equations.end());
    f.processed = sys.to_polynomials();
    std::sort(f.processed.begin(), f.processed.end());
    f.num_fixed = sys.num_fixed();
    f.num_replaced = sys.num_replaced();
    f.ok = sys.okay();
    return f;
}

TEST(AnfSystemSnapshot, RestoreRewindsExactly) {
    AnfSystem sys =
        make("x1*x2 + x3 + x4 + 1\nx1*x2*x3 + x1 + x3 + 1\n"
             "x1*x3 + x3*x4*x5 + x3\nx2*x3 + x3*x5 + 1\nx2*x3 + x5 + 1\n",
             5);
    const Fingerprint base = fingerprint(sys);

    const auto snap = sys.snapshot();
    // Mutate heavily: fix a variable (triggers renormalisation and
    // follow-on propagation) and add a fresh equation.
    EXPECT_TRUE(sys.add_fact(parse_polynomial("x1 + 1")));
    sys.add_fact(parse_polynomial("x4 + x5"));
    EXPECT_NE(fingerprint(sys), base);

    sys.restore(snap);
    EXPECT_EQ(fingerprint(sys), base);

    // The dedup set must have rewound too: the same facts are "new" again
    // and lead to the same state.
    const auto again = sys.snapshot();
    EXPECT_TRUE(sys.add_fact(parse_polynomial("x1 + 1")));
    sys.restore(again);
    EXPECT_EQ(fingerprint(sys), base);
}

TEST(AnfSystemSnapshot, NestedSnapshotsRestoreInLifoOrder) {
    AnfSystem sys = make("x1 + x2 + x3\nx2*x3 + x4\n", 4);
    const Fingerprint f0 = fingerprint(sys);
    const auto s0 = sys.snapshot();

    sys.add_fact(parse_polynomial("x1"));
    const Fingerprint f1 = fingerprint(sys);
    const auto s1 = sys.snapshot();

    sys.add_fact(parse_polynomial("x2 + 1"));
    EXPECT_NE(fingerprint(sys), f1);

    sys.restore(s1);
    EXPECT_EQ(fingerprint(sys), f1);
    sys.restore(s0);
    EXPECT_EQ(fingerprint(sys), f0);
}

TEST(AnfSystemSnapshot, RestoreRecoversFromContradiction) {
    AnfSystem sys = make("x1 + x2\n", 2);
    const Fingerprint base = fingerprint(sys);
    const auto snap = sys.snapshot();

    sys.add_fact(parse_polynomial("x1"));      // x1 = 0 (so x2 = 0)
    sys.add_fact(parse_polynomial("x2 + 1"));  // x2 = 1: contradiction
    EXPECT_FALSE(sys.okay());

    sys.restore(snap);
    EXPECT_TRUE(sys.okay());
    EXPECT_EQ(fingerprint(sys), base);
    // The system is live again: new facts propagate normally.
    EXPECT_TRUE(sys.add_fact(parse_polynomial("x1 + 1")));
    EXPECT_TRUE(sys.resolve(1).value) << "x2 == x1 == 1";
}

TEST(AnfSystemSnapshot, AddOriginalIsScopedByRestore) {
    AnfSystem sys = make("x1 + x2\n", 2);
    const auto snap = sys.snapshot();
    sys.add_original(parse_polynomial("x1 + 1"));
    // x1 = x2 = 1 satisfies base + scope; all-zero violates the scope.
    EXPECT_TRUE(sys.check_solution({true, true}));
    EXPECT_FALSE(sys.check_solution({false, false}));
    sys.restore(snap);
    EXPECT_TRUE(sys.check_solution({false, false}))
        << "scoped original must not survive restore";
}

/// Randomised exactness: interleave snapshots, fact additions and
/// restores; every restore must reproduce the exact fingerprint taken at
/// its snapshot.
class AnfSystemSnapshotRandom : public ::testing::TestWithParam<int> {};

TEST_P(AnfSystemSnapshotRandom, RandomisedRoundTrips) {
    Rng rng(static_cast<uint64_t>(GetParam()) * 71 + 5);
    const unsigned nv = 5 + rng.below(5);
    std::vector<Polynomial> polys;
    const size_t np = 4 + rng.below(5);
    for (size_t i = 0; i < np; ++i) {
        std::vector<anf::Monomial> monos;
        const size_t nm = 1 + rng.below(4);
        for (size_t j = 0; j < nm; ++j) {
            std::vector<anf::Var> vars;
            const size_t d = rng.below(3);
            for (size_t l = 0; l < d; ++l)
                vars.push_back(static_cast<anf::Var>(rng.below(nv)));
            monos.emplace_back(std::move(vars));
        }
        polys.emplace_back(std::move(monos));
    }
    AnfSystem sys(polys, nv);

    std::vector<std::pair<AnfSystem::Snapshot, Fingerprint>> stack;
    for (int round = 0; round < 40; ++round) {
        const unsigned action = rng.below(3);
        if (action == 0) {
            stack.emplace_back(sys.snapshot(), fingerprint(sys));
        } else if (action == 1 && !stack.empty()) {
            sys.restore(stack.back().first);
            EXPECT_EQ(fingerprint(sys), stack.back().second)
                << "restore diverged in round " << round;
            stack.pop_back();
        } else {
            // A random small fact: unit, equivalence, or quadratic.
            const anf::Var a = static_cast<anf::Var>(rng.below(nv));
            const anf::Var b = static_cast<anf::Var>(rng.below(nv));
            Polynomial f = Polynomial::variable(a);
            switch (rng.below(4)) {
                case 0: break;                                   // a = 0
                case 1: f += Polynomial::constant(true); break;  // a = 1
                case 2: f += Polynomial::variable(b); break;     // a == b
                default:
                    f = f * Polynomial::variable(b);
                    f += Polynomial::constant(true);  // a*b = 1
                    break;
            }
            sys.add_fact(f);
        }
    }
    while (!stack.empty()) {
        sys.restore(stack.back().first);
        EXPECT_EQ(fingerprint(sys), stack.back().second);
        stack.pop_back();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnfSystemSnapshotRandom,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace bosphorus::core
