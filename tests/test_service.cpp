// The multi-tenant solve service (include/bosphorus/service.h) and its
// wire protocol (src/service/protocol.h).
//
// Determinism note: this container may expose a single core, so no test
// relies on real parallelism or timing-dependent hard instances. Blocking
// is produced deterministically instead, by a "blocker" SAT backend
// registered in this binary: its solve() parks until the engine's
// terminate hook (the job's cancellation/deadline token) fires, which
// pins a worker slot exactly until the test cancels the job, its deadline
// expires, or the service shuts down.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bosphorus/bosphorus.h"
#include "service/protocol.h"
#include "test_util.h"

namespace bosphorus {
namespace {

using namespace std::chrono_literals;

Problem paper_example() {
    auto p = Problem::from_anf_text(
        "x1*x2 + x3 + x4 + 1\n"
        "x1*x2*x3 + x1 + x3 + 1\n"
        "x1*x3 + x3*x4*x5 + x3\n"
        "x2*x3 + x3*x5 + 1\n"
        "x2*x3 + x5 + 1\n");
    EXPECT_TRUE(p.ok());
    return *p;
}

EngineConfig small_config() {
    EngineConfig cfg;
    cfg.xl.m_budget = 16;
    cfg.elimlin.m_budget = 16;
    cfg.sat_conflicts_start = 1000;
    cfg.sat_conflicts_max = 10'000;
    cfg.sat_conflicts_step = 1000;
    cfg.max_iterations = 8;
    cfg.time_budget_s = 10.0;
    cfg.emit_processed = false;
    return cfg;
}

// ---- the blocker backend ---------------------------------------------------

std::atomic<int> g_blocker_entered{0};  // solve() calls that have parked

/// A SolverBackend whose solve() blocks until the terminate hook fires.
class BlockerBackend : public sat::SolverBackend {
public:
    std::string name() const override { return "blocker"; }
    void ensure_vars(size_t n) override { n_vars_ = std::max(n_vars_, n); }
    size_t num_vars() const override { return n_vars_; }
    bool add_clause(const std::vector<sat::Lit>&) override { return true; }
    bool add_xor(const sat::XorConstraint&) override { return true; }
    void assume(sat::Lit) override {}

    sat::Result solve(int64_t, double) override {
        g_blocker_entered.fetch_add(1, std::memory_order_release);
        while (!interrupted_.load(std::memory_order_acquire) &&
               !(terminate_ && terminate_())) {
            std::this_thread::sleep_for(1ms);
        }
        return sat::Result::kUnknown;
    }

    sat::LBool value(sat::Var) const override { return sat::LBool::kFalse; }
    bool failed(sat::Lit) const override { return false; }
    bool okay() const override { return true; }
    void interrupt() override {
        interrupted_.store(true, std::memory_order_release);
    }
    void clear_interrupt() override {
        interrupted_.store(false, std::memory_order_release);
    }
    void set_terminate_callback(std::function<bool()> cb) override {
        terminate_ = std::move(cb);
    }
    sat::Solver::Stats stats() const override { return {}; }

private:
    size_t n_vars_ = 0;
    std::function<bool()> terminate_;
    std::atomic<bool> interrupted_{false};
};

void register_blocker_once() {
    static const bool done = [] {
        sat::BackendInfo info;
        info.name = "blocker";
        info.description = "test backend; solve() parks until terminated";
        (void)sat::BackendRegistry::global().register_backend(
            info, [](const std::string&)
                      -> Result<std::unique_ptr<sat::SolverBackend>> {
                return std::unique_ptr<sat::SolverBackend>(
                    new BlockerBackend());
            });
        return true;
    }();
    (void)done;
}

/// Service config whose every job parks in the blocker backend: the only
/// registered technique is the SAT step, routed to "blocker".
ServiceConfig blocking_service(unsigned workers, size_t max_queue) {
    register_blocker_once();
    ServiceConfig cfg;
    cfg.engine = small_config();
    cfg.engine.use_xl = false;
    cfg.engine.use_elimlin = false;
    cfg.engine.sat_backend = "blocker";
    cfg.n_workers = workers;
    cfg.max_queued_jobs = max_queue;
    cfg.default_timeout_s = 30.0;
    return cfg;
}

/// A problem initial propagation cannot touch (single quadratic, many
/// models), so a blocking-service job really reaches the SAT step.
Problem opaque_problem() {
    auto p = Problem::from_anf_text("x1*x2 + x3\n");
    EXPECT_TRUE(p.ok());
    return *p;
}

/// Wait (bounded) until `n` blocker solves have parked.
void wait_blocker_entered(int n) {
    const Timer t;
    while (g_blocker_entered.load(std::memory_order_acquire) < n &&
           t.seconds() < 30.0) {
        std::this_thread::sleep_for(1ms);
    }
    ASSERT_GE(g_blocker_entered.load(std::memory_order_acquire), n);
}

JobRequest one_shot(const std::string& client, Problem p,
                    double timeout_s = 0.0) {
    JobRequest req;
    req.client = client;
    req.problem = std::move(p);
    req.timeout_s = timeout_s;
    return req;
}

// ---- one-shot jobs vs direct Engine calls ----------------------------------

TEST(Service, OneShotVerdictMatchesEngine) {
    const EngineConfig cfg = small_config();
    const Result<Report> direct = Engine(cfg).run(paper_example());
    ASSERT_TRUE(direct.ok());
    ASSERT_EQ(direct->verdict, sat::Result::kSat);

    ServiceConfig scfg;
    scfg.engine = cfg;
    scfg.n_workers = 2;
    SolveService svc(scfg);
    const Result<JobId> id = svc.submit(one_shot("a", paper_example()));
    ASSERT_TRUE(id.ok());
    const Result<JobOutcome> out = svc.wait(*id);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out->state, JobState::kDone);
    EXPECT_EQ(out->report.verdict, sat::Result::kSat);
    // Bit-identical: same solution as the direct run (the instance has a
    // unique model, and service jobs run the same Engine on the same
    // config and seed).
    EXPECT_EQ(out->report.solution, direct->solution);
    EXPECT_GE(out->run_s, 0.0);
    EXPECT_EQ(out->timeout_s, scfg.default_timeout_s);
}

TEST(Service, EightConcurrentClientsMixedWorkloads) {
    // The acceptance scenario: >= 8 concurrent clients against ONE
    // service, mixing one-shot jobs and warm session sweeps; every
    // verdict must match the direct library call.
    const Problem base = paper_example();
    const EngineConfig cfg = small_config();

    // Direct reference: x5 = 0 is consistent (the unique model is
    // 1,1,1,1,0), x5 = 1 is not.
    Session ref(base, cfg);
    ref.push();
    ref.assume(4, false);
    const auto ref_sat = ref.solve();
    ASSERT_TRUE(ref_sat.ok());
    ASSERT_EQ(ref_sat->verdict, sat::Result::kSat);
    ref.pop();
    ref.push();
    ref.assume(4, true);
    const auto ref_unsat = ref.solve();
    ASSERT_TRUE(ref_unsat.ok());
    ASSERT_EQ(ref_unsat->verdict, sat::Result::kUnsat);
    ref.pop();

    ServiceConfig scfg;
    scfg.engine = cfg;
    scfg.n_workers = 4;
    scfg.max_queued_jobs = 256;
    SolveService svc(scfg);

    constexpr int kClients = 8;
    std::atomic<int> failures{0};
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&svc, &base, &failures, c] {
            const std::string me = "client-" + std::to_string(c);
            auto check = [&failures](bool ok) {
                if (!ok) failures.fetch_add(1);
            };
            if (c % 2 == 0) {
                // One-shot tenant: two jobs, one SAT one UNSAT.
                const Result<JobId> sat_id =
                    svc.submit(one_shot(me, paper_example()));
                check(sat_id.ok());
                auto unsat = Problem::from_cnf_text("p cnf 1 2\n1 0\n-1 0\n");
                check(unsat.ok());
                const Result<JobId> unsat_id =
                    svc.submit(one_shot(me, *unsat));
                check(unsat_id.ok());
                if (failures.load() > 0) return;
                const auto a = svc.wait(*sat_id);
                const auto b = svc.wait(*unsat_id);
                check(a.ok() && a->state == JobState::kDone &&
                      a->report.verdict == sat::Result::kSat);
                check(b.ok() && b->state == JobState::kDone &&
                      b->report.verdict == sat::Result::kUnsat);
            } else {
                // Sweep tenant: a warm session probing both x5 values.
                check(svc.open_session(me, "s", base).ok());
                const Result<JobId> sat_id =
                    svc.submit_assumptions(me, "s", {{4, false}});
                const Result<JobId> unsat_id =
                    svc.submit_assumptions(me, "s", {{4, true}});
                check(sat_id.ok() && unsat_id.ok());
                if (failures.load() > 0) return;
                const auto a = svc.wait(*sat_id);
                const auto b = svc.wait(*unsat_id);
                check(a.ok() && a->state == JobState::kDone &&
                      a->report.verdict == sat::Result::kSat);
                check(b.ok() && b->state == JobState::kDone &&
                      b->report.verdict == sat::Result::kUnsat);
                check(svc.close_session(me, "s").ok());
            }
        });
    }
    for (auto& t : clients) t.join();
    EXPECT_EQ(failures.load(), 0);

    const ServiceStats stats = svc.stats();
    EXPECT_EQ(stats.accepted, 16u);
    EXPECT_EQ(stats.completed, 16u);
    EXPECT_EQ(stats.rejected, 0u);
    EXPECT_EQ(stats.clients, 8u);
    EXPECT_EQ(stats.open_sessions, 0u);  // all closed again
    EXPECT_EQ(stats.backend_verdicts.at("native").sat, 8u);
    EXPECT_EQ(stats.backend_verdicts.at("native").unsat, 8u);
}

// ---- sessions ---------------------------------------------------------------

TEST(Service, SessionJobsRunInSubmitOrderAndStayWarm) {
    ServiceConfig scfg;
    scfg.engine = small_config();
    scfg.n_workers = 4;  // more slots than the session may use at once
    SolveService svc(scfg);

    ASSERT_TRUE(svc.open_session("a", "sweep", paper_example()).ok());
    EXPECT_EQ(svc.stats().warm_sessions, 0u);  // lazily materialised

    std::vector<JobId> ids;
    for (int i = 0; i < 6; ++i) {
        const bool value = i % 2 != 0;  // alternate x5 = 0 / x5 = 1
        const Result<JobId> id =
            svc.submit_assumptions("a", "sweep", {{4, value}});
        ASSERT_TRUE(id.ok());
        ids.push_back(*id);
    }
    for (int i = 0; i < 6; ++i) {
        const auto out = svc.wait(ids[size_t(i)]);
        ASSERT_TRUE(out.ok());
        EXPECT_EQ(out->state, JobState::kDone);
        EXPECT_EQ(out->report.verdict, i % 2 ? sat::Result::kUnsat
                                             : sat::Result::kSat);
    }
    EXPECT_EQ(svc.stats().warm_sessions, 1u);  // one Session served all 6
    ASSERT_TRUE(svc.close_session("a", "sweep").ok());
    EXPECT_EQ(svc.stats().open_sessions, 0u);
}

TEST(Service, SessionValidation) {
    SolveService svc([] {
        ServiceConfig c;
        c.engine = small_config();
        c.n_workers = 1;
        c.max_sessions_per_client = 2;
        return c;
    }());

    EXPECT_EQ(svc.submit_assumptions("a", "nope", {{0, true}}).status().code(),
              StatusCode::kInvalidArgument);
    ASSERT_TRUE(svc.open_session("a", "s1", paper_example()).ok());
    EXPECT_EQ(svc.open_session("a", "s1", paper_example()).code(),
              StatusCode::kInvalidArgument);  // duplicate name
    ASSERT_TRUE(svc.open_session("a", "s2", paper_example()).ok());
    EXPECT_EQ(svc.open_session("a", "s3", paper_example()).code(),
              StatusCode::kUnavailable);  // per-client pool cap
    // Another client has its own pool.
    EXPECT_TRUE(svc.open_session("b", "s1", paper_example()).ok());
    // Out-of-range assumption variable fails at submit.
    EXPECT_EQ(
        svc.submit_assumptions("a", "s1", {{99, true}}).status().code(),
        StatusCode::kInvalidArgument);
    EXPECT_EQ(svc.close_session("a", "nope").code(),
              StatusCode::kInvalidArgument);
}

// ---- admission control ------------------------------------------------------

TEST(Service, OverCapacitySubmitsRejectedStructured) {
    g_blocker_entered.store(0);
    SolveService svc(blocking_service(/*workers=*/1, /*max_queue=*/2));

    // Fill the single worker slot...
    const Result<JobId> running = svc.submit(one_shot("a", opaque_problem()));
    ASSERT_TRUE(running.ok());
    wait_blocker_entered(1);
    // ...then the queue...
    const Result<JobId> q1 = svc.submit(one_shot("a", opaque_problem()));
    const Result<JobId> q2 = svc.submit(one_shot("b", opaque_problem()));
    ASSERT_TRUE(q1.ok());
    ASSERT_TRUE(q2.ok());
    // ...and the next submit bounces with a structured error.
    const Result<JobId> rejected = svc.submit(one_shot("c", opaque_problem()));
    ASSERT_FALSE(rejected.ok());
    EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable);
    EXPECT_NE(rejected.status().message().find("queue full"),
              std::string::npos);

    ServiceStats stats = svc.stats();
    EXPECT_EQ(stats.accepted, 3u);
    EXPECT_EQ(stats.rejected, 1u);
    EXPECT_EQ(stats.queued, 2u);
    EXPECT_EQ(stats.running, 1u);

    // Cancelling a queued job frees a slot for admission again.
    ASSERT_TRUE(svc.cancel(*q2).ok());
    const Result<JobId> retry = svc.submit(one_shot("c", opaque_problem()));
    EXPECT_TRUE(retry.ok());

    svc.shutdown();
    // Everything terminal after shutdown; nothing leaked.
    stats = svc.stats();
    EXPECT_EQ(stats.queued, 0u);
    EXPECT_EQ(stats.running, 0u);
    EXPECT_EQ(stats.completed + stats.cancelled + stats.expired + stats.failed,
              stats.accepted);
}

// ---- cancellation and deadlines --------------------------------------------

TEST(Service, CancelRunningJobViaToken) {
    g_blocker_entered.store(0);
    SolveService svc(blocking_service(1, 8));
    const Result<JobId> id = svc.submit(one_shot("a", opaque_problem()));
    ASSERT_TRUE(id.ok());
    wait_blocker_entered(1);
    EXPECT_EQ(*svc.job_state(*id), JobState::kRunning);

    ASSERT_TRUE(svc.cancel(*id).ok());
    const Result<JobOutcome> out = svc.wait(*id);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out->state, JobState::kCancelled);
    EXPECT_TRUE(out->report.interrupted);  // partial report, not thread death
    EXPECT_EQ(out->report.verdict, sat::Result::kUnknown);
    // Cancelling a terminal job is an idempotent no-op.
    EXPECT_TRUE(svc.cancel(*id).ok());

    // The worker survived: the service still accepts and runs jobs.
    const Result<JobId> after = svc.submit(one_shot("a", paper_example()));
    ASSERT_TRUE(after.ok());
    ASSERT_TRUE(svc.cancel(*after).ok());  // blocker config: just cancel it
    EXPECT_TRUE(svc.wait(*after).ok());
}

TEST(Service, CancelQueuedJobNeverRuns) {
    g_blocker_entered.store(0);
    SolveService svc(blocking_service(1, 8));
    const Result<JobId> running = svc.submit(one_shot("a", opaque_problem()));
    ASSERT_TRUE(running.ok());
    wait_blocker_entered(1);
    const Result<JobId> queued = svc.submit(one_shot("a", opaque_problem()));
    ASSERT_TRUE(queued.ok());
    EXPECT_EQ(*svc.job_state(*queued), JobState::kQueued);

    ASSERT_TRUE(svc.cancel(*queued).ok());
    const Result<JobOutcome> out = svc.wait(*queued);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out->state, JobState::kCancelled);
    EXPECT_EQ(out->run_s, 0.0);  // never dispatched
    EXPECT_EQ(g_blocker_entered.load(), 1);
}

TEST(Service, DeadlineExpiryIsCooperative) {
    g_blocker_entered.store(0);
    SolveService svc(blocking_service(1, 8));
    const Timer t;
    const Result<JobId> id =
        svc.submit(one_shot("a", opaque_problem(), /*timeout_s=*/0.3));
    ASSERT_TRUE(id.ok());
    const Result<JobOutcome> out = svc.wait(*id);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out->state, JobState::kExpired);
    EXPECT_EQ(out->timeout_s, 0.3);
    EXPECT_GE(t.seconds(), 0.29);  // the deadline, not an early give-up

    // PAR-2: an expired job scores twice its deadline.
    const ServiceStats stats = svc.stats();
    EXPECT_EQ(stats.expired, 1u);
    EXPECT_EQ(stats.par2_jobs, 1u);
    EXPECT_DOUBLE_EQ(stats.par2_sum, 0.6);

    // The worker thread survived expiry: the next job parks in the
    // blocker again (same single worker).
    const Result<JobId> next = svc.submit(one_shot("a", opaque_problem()));
    ASSERT_TRUE(next.ok());
    wait_blocker_entered(2);
    EXPECT_TRUE(svc.cancel(*next).ok());
}

TEST(Service, TimeoutValidationAndCap) {
    ServiceConfig cfg;
    cfg.engine = small_config();
    cfg.n_workers = 1;
    cfg.max_timeout_s = 5.0;
    SolveService svc(cfg);

    EXPECT_EQ(svc.submit(one_shot("a", paper_example(), -1.0)).status().code(),
              StatusCode::kInvalidArgument);
    // A request above the cap is clamped, not rejected.
    const Result<JobId> id = svc.submit(one_shot("a", paper_example(), 100.0));
    ASSERT_TRUE(id.ok());
    const auto out = svc.wait(*id);
    ASSERT_TRUE(out.ok());
    EXPECT_DOUBLE_EQ(out->timeout_s, 5.0);
    // An unknown solver spec fails the submit, not the job.
    JobRequest bad = one_shot("a", paper_example());
    bad.solver = "no-such-backend";
    EXPECT_EQ(svc.submit(std::move(bad)).status().code(),
              StatusCode::kInvalidArgument);
}

// ---- lifecycle and retention ------------------------------------------------

TEST(Service, ShutdownCancelsQueuedAndRunning) {
    g_blocker_entered.store(0);
    SolveService svc(blocking_service(1, 8));
    const Result<JobId> running = svc.submit(one_shot("a", opaque_problem()));
    const Result<JobId> queued = svc.submit(one_shot("b", opaque_problem()));
    ASSERT_TRUE(running.ok() && queued.ok());
    wait_blocker_entered(1);

    svc.shutdown();
    EXPECT_EQ(*svc.job_state(*running), JobState::kCancelled);
    EXPECT_EQ(*svc.job_state(*queued), JobState::kCancelled);
    // Post-shutdown submits are rejected with a structured error.
    const Result<JobId> late = svc.submit(one_shot("a", opaque_problem()));
    EXPECT_EQ(late.status().code(), StatusCode::kUnavailable);
    // Idempotent (also runs again in the destructor).
    svc.shutdown();
}

TEST(Service, RetentionEvictsOldestFinishedJobs) {
    ServiceConfig cfg;
    cfg.engine = small_config();
    cfg.n_workers = 1;
    cfg.max_retained_jobs = 2;
    SolveService svc(cfg);

    std::vector<JobId> ids;
    for (int i = 0; i < 4; ++i) {
        const Result<JobId> id = svc.submit(one_shot("a", paper_example()));
        ASSERT_TRUE(id.ok());
        ASSERT_TRUE(svc.wait(*id).ok());
        ids.push_back(*id);
    }
    // The two oldest results were evicted; the two newest are readable.
    EXPECT_EQ(svc.job_state(ids[0]).status().code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(svc.job_state(ids[1]).status().code(),
              StatusCode::kInvalidArgument);
    EXPECT_TRUE(svc.job_state(ids[2]).ok());
    EXPECT_TRUE(svc.job_state(ids[3]).ok());
}

TEST(Service, WaitTimesOutWithoutConsumingTheJob) {
    g_blocker_entered.store(0);
    SolveService svc(blocking_service(1, 8));
    const Result<JobId> id = svc.submit(one_shot("a", opaque_problem()));
    ASSERT_TRUE(id.ok());
    wait_blocker_entered(1);

    const Result<JobOutcome> timed = svc.wait(*id, 0.05);
    ASSERT_FALSE(timed.ok());
    EXPECT_EQ(timed.status().code(), StatusCode::kTimeout);
    // The job is untouched and still cancellable + waitable.
    ASSERT_TRUE(svc.cancel(*id).ok());
    const Result<JobOutcome> out = svc.wait(*id);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out->state, JobState::kCancelled);
}

TEST(Service, RoundRobinIsFairAcrossClients) {
    g_blocker_entered.store(0);
    SolveService svc(blocking_service(1, 16));
    // Park the worker, then queue 3 jobs for a greedy client and 1 for a
    // light client, in that submit order.
    const Result<JobId> parked = svc.submit(one_shot("z", opaque_problem()));
    ASSERT_TRUE(parked.ok());
    wait_blocker_entered(1);
    std::vector<JobId> greedy;
    for (int i = 0; i < 3; ++i) {
        const auto id = svc.submit(one_shot("greedy", opaque_problem()));
        ASSERT_TRUE(id.ok());
        greedy.push_back(*id);
    }
    const Result<JobId> light = svc.submit(one_shot("light", opaque_problem()));
    ASSERT_TRUE(light.ok());

    // Free the slot: round-robin must hand it to one queued lane, and
    // the light client's single job must not sit behind all three greedy
    // jobs -- cancel jobs as they start and track dispatch order.
    std::vector<JobId> dispatch_order;
    ASSERT_TRUE(svc.cancel(*parked).ok());
    for (int round = 0; round < 4; ++round) {
        const int target = 2 + round;  // parked was blocker-solve #1
        wait_blocker_entered(target);
        // Exactly one of the queued jobs is now running.
        for (const JobId id : {greedy[0], greedy[1], greedy[2], *light}) {
            const auto st = svc.job_state(id);
            ASSERT_TRUE(st.ok());
            if (*st == JobState::kRunning) {
                dispatch_order.push_back(id);
                ASSERT_TRUE(svc.cancel(id).ok());
                ASSERT_TRUE(svc.wait(id).ok());
                break;
            }
        }
    }
    ASSERT_EQ(dispatch_order.size(), 4u);
    // The light client's job ran before the greedy client's 2nd and 3rd.
    const auto pos = [&dispatch_order](JobId id) {
        return std::find(dispatch_order.begin(), dispatch_order.end(), id) -
               dispatch_order.begin();
    };
    EXPECT_LT(pos(*light), pos(greedy[1]));
    EXPECT_LT(pos(*light), pos(greedy[2]));
}

// ---- metrics ----------------------------------------------------------------

TEST(Service, StatsSnapshotIsConsistent) {
    ServiceConfig cfg;
    cfg.engine = small_config();
    cfg.n_workers = 2;
    SolveService svc(cfg);

    const anf::MonomialStore::Stats before = anf::MonomialStore::global().stats();
    const Result<JobId> id = svc.submit(one_shot("a", paper_example()));
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(svc.wait(*id).ok());

    const ServiceStats stats = svc.stats();
    EXPECT_EQ(stats.accepted, 1u);
    EXPECT_EQ(stats.completed, 1u);
    EXPECT_EQ(stats.queued, 0u);
    EXPECT_EQ(stats.running, 0u);
    EXPECT_EQ(stats.clients, 1u);
    EXPECT_EQ(stats.par2_jobs, 1u);
    EXPECT_GT(stats.par2_sum, 0.0);  // decided: contributes its runtime
    EXPECT_LT(stats.par2(), 2 * cfg.default_timeout_s);
    EXPECT_GT(stats.uptime_s, 0.0);
    // The store occupancy is live and append-only: never below a
    // snapshot taken earlier.
    EXPECT_GE(stats.store.entries, before.entries);
    EXPECT_GT(stats.store.entries, 0u);
    EXPECT_GT(stats.store.arena_bytes, 0u);
    EXPECT_EQ(stats.backend_verdicts.at("native").sat, 1u);
}

}  // namespace
}  // namespace bosphorus
