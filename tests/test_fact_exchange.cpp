// Unit tests for the lock-free SharedFactPool of
// src/runtime/fact_exchange.h: per-cursor publish/import ordering,
// duplicate suppression, capacity eviction with safe cursor jumps,
// self-worker skipping, rejection of out-of-range/tautological facts,
// binary canonicalisation -- and a two-thread publish/import stress run
// that the CI ThreadSanitizer job uses to hunt data races.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "runtime/fact_exchange.h"
#include "sat/types.h"
#include "test_util.h"
#include "util/rng.h"

namespace bosphorus {
namespace {

using runtime::SharedFact;
using runtime::SharedFactPool;
using sat::mk_lit;

std::vector<SharedFact> drain(const SharedFactPool& pool,
                              SharedFactPool::Cursor& cur,
                              unsigned self_worker) {
    std::vector<SharedFact> out;
    pool.import(cur, self_worker, out);
    return out;
}

TEST(FactPool, PublishThenImportPreservesOrderAndContent) {
    SharedFactPool pool(100, 64);
    EXPECT_EQ(pool.capacity(), 64u);
    EXPECT_EQ(pool.num_shared_vars(), 100u);

    ASSERT_TRUE(pool.publish_unit(0, mk_lit(3, false)));
    ASSERT_TRUE(pool.publish_unit(0, mk_lit(7, true)));
    ASSERT_TRUE(pool.publish_binary(0, mk_lit(1, false), mk_lit(2, true)));

    SharedFactPool::Cursor cur;
    const std::vector<SharedFact> got = drain(pool, cur, /*self=*/1);
    ASSERT_EQ(got.size(), 3u);
    EXPECT_EQ(got[0].kind, SharedFact::Kind::kUnit);
    EXPECT_EQ(got[0].a, mk_lit(3, false));
    EXPECT_EQ(got[0].worker, 0u);
    EXPECT_EQ(got[1].a, mk_lit(7, true));
    EXPECT_EQ(got[2].kind, SharedFact::Kind::kBinary);
    // Canonicalised: sorted by raw literal value.
    EXPECT_EQ(got[2].a, mk_lit(1, false));
    EXPECT_EQ(got[2].b, mk_lit(2, true));

    // The cursor consumed the stream; nothing arrives twice.
    EXPECT_TRUE(drain(pool, cur, 1).empty());
}

TEST(FactPool, EachCursorGetsItsOwnFullStream) {
    SharedFactPool pool(32, 64);
    for (unsigned v = 0; v < 10; ++v)
        ASSERT_TRUE(pool.publish_unit(0, mk_lit(v, v & 1)));

    SharedFactPool::Cursor c1, c2;
    EXPECT_EQ(drain(pool, c1, 1).size(), 10u);
    EXPECT_EQ(drain(pool, c2, 2).size(), 10u);  // independent position
    EXPECT_TRUE(drain(pool, c1, 1).empty());

    // New publishes reach both cursors from where each left off.
    ASSERT_TRUE(pool.publish_unit(0, mk_lit(20, false)));
    EXPECT_EQ(drain(pool, c1, 1).size(), 1u);
    EXPECT_EQ(drain(pool, c2, 2).size(), 1u);
}

TEST(FactPool, DuplicatePublishesAreSuppressed) {
    SharedFactPool pool(32, 64);
    EXPECT_TRUE(pool.publish_unit(0, mk_lit(5, false)));
    // Same fact again -- from the same and from a different worker: the
    // dedup key strips the worker, so both are duplicates.
    EXPECT_FALSE(pool.publish_unit(0, mk_lit(5, false)));
    EXPECT_FALSE(pool.publish_unit(3, mk_lit(5, false)));
    // The complementary literal is a different fact.
    EXPECT_TRUE(pool.publish_unit(0, mk_lit(5, true)));

    EXPECT_TRUE(pool.publish_binary(0, mk_lit(1, false), mk_lit(2, false)));
    // Same clause in swapped order is the same fact.
    EXPECT_FALSE(pool.publish_binary(1, mk_lit(2, false), mk_lit(1, false)));

    EXPECT_EQ(pool.published(), 3u);
    EXPECT_EQ(pool.suppressed(), 3u);

    SharedFactPool::Cursor cur;
    EXPECT_EQ(drain(pool, cur, 9).size(), 3u);
}

TEST(FactPool, RejectsOutOfRangeAndTautologies) {
    SharedFactPool pool(10, 64);
    EXPECT_FALSE(pool.publish_unit(0, mk_lit(10, false)));  // var == bound
    EXPECT_FALSE(pool.publish_unit(0, mk_lit(999, true)));
    EXPECT_FALSE(pool.publish_binary(0, mk_lit(1, false), mk_lit(11, false)));
    // Tautology (a | ~a) carries no information.
    EXPECT_FALSE(pool.publish_binary(0, mk_lit(4, false), mk_lit(4, true)));
    EXPECT_EQ(pool.published(), 0u);
    EXPECT_EQ(pool.rejected(), 4u);

    // Degenerate (a | a) collapses to the unit a.
    EXPECT_TRUE(pool.publish_binary(0, mk_lit(4, false), mk_lit(4, false)));
    SharedFactPool::Cursor cur;
    const auto got = drain(pool, cur, 9);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].kind, SharedFact::Kind::kUnit);
    EXPECT_EQ(got[0].a, mk_lit(4, false));
}

TEST(FactPool, ImportSkipsOwnFacts) {
    SharedFactPool pool(32, 64);
    ASSERT_TRUE(pool.publish_unit(1, mk_lit(0, false)));
    ASSERT_TRUE(pool.publish_unit(2, mk_lit(1, false)));
    ASSERT_TRUE(pool.publish_unit(1, mk_lit(2, false)));

    SharedFactPool::Cursor cur;
    const auto got = drain(pool, cur, /*self=*/1);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].worker, 2u);
    EXPECT_EQ(got[0].a, mk_lit(1, false));
}

TEST(FactPool, MaxFactsBoundsOneImportCall) {
    SharedFactPool pool(64, 64);
    for (unsigned v = 0; v < 10; ++v)
        ASSERT_TRUE(pool.publish_unit(0, mk_lit(v, false)));
    SharedFactPool::Cursor cur;
    std::vector<SharedFact> out;
    EXPECT_EQ(pool.import(cur, 1, out, 4), 4u);
    EXPECT_EQ(pool.import(cur, 1, out, 100), 6u);
    EXPECT_EQ(out.size(), 10u);
    for (unsigned v = 0; v < 10; ++v) EXPECT_EQ(out[v].a, mk_lit(v, false));
}

TEST(FactPool, EvictionLosesOldFactsButNeverCorruptsImports) {
    // Capacity rounds up to 64. Publish far past capacity with a stale
    // cursor: the cursor must jump, imported facts must all be valid, and
    // the newest `capacity` facts must all arrive.
    SharedFactPool pool(SharedFactPool::kMaxSharedVars, 64);
    const size_t kTotal = 500;
    for (size_t i = 0; i < kTotal; ++i)
        ASSERT_TRUE(pool.publish_unit(0, mk_lit(static_cast<sat::Var>(i),
                                                false)));
    EXPECT_EQ(pool.published(), kTotal);

    SharedFactPool::Cursor stale;  // still at 0, 500-64 facts behind
    const auto got = drain(pool, stale, 1);
    ASSERT_EQ(got.size(), pool.capacity());
    // Exactly the newest window, in publish order.
    for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].kind, SharedFact::Kind::kUnit);
        EXPECT_EQ(got[i].a.var(), kTotal - pool.capacity() + i);
    }
    // Import-after-eviction is a stable position, not a one-off rescue.
    ASSERT_TRUE(pool.publish_unit(0, mk_lit(1u << 20, true)));
    const auto more = drain(pool, stale, 1);
    ASSERT_EQ(more.size(), 1u);
    EXPECT_EQ(more[0].a, mk_lit(1u << 20, true));
}

TEST(FactPool, CapacityIsRoundedUpToAPowerOfTwoWithAFloor) {
    EXPECT_EQ(SharedFactPool(8, 1).capacity(), 64u);
    EXPECT_EQ(SharedFactPool(8, 64).capacity(), 64u);
    EXPECT_EQ(SharedFactPool(8, 65).capacity(), 128u);
    EXPECT_EQ(SharedFactPool(8, 1000).capacity(), 1024u);
}

TEST(FactPool, VarSpaceIsClampedToTheRepresentableBound) {
    SharedFactPool pool(SIZE_MAX, 64);
    EXPECT_EQ(pool.num_shared_vars(), SharedFactPool::kMaxSharedVars);
    EXPECT_TRUE(pool.publish_unit(
        0, mk_lit(SharedFactPool::kMaxSharedVars - 1, true)));
    EXPECT_FALSE(
        pool.publish_unit(0, mk_lit(SharedFactPool::kMaxSharedVars, true)));
}

// Two publishers and two importers hammering one pool -- the CI TSan
// target. Two configurations:
//  * a pool big enough that nothing is ever evicted: every cursor must
//    receive EVERY foreign fact EXACTLY once;
//  * a tiny pool churning through many evictions: delivery may be lossy
//    (and, across a mid-publish wrap, very rarely duplicated), but every
//    delivered fact must be well-formed and attributable to its
//    publisher -- a torn read would surface as an alien variable/worker.
struct StressSeen {
    SharedFactPool::Cursor cursor;
    std::vector<SharedFact> facts;
};

void run_stress(SharedFactPool& pool, size_t per_worker, StressSeen* s2,
                StressSeen* s3) {
    std::atomic<bool> go{false};
    // Worker w publishes units over a private variable range, so any
    // cross-talk or corruption is attributable.
    auto publisher = [&](unsigned w) {
        while (!go.load(std::memory_order_acquire)) {}
        Rng rng(testutil::test_seed() * 7919 + w);
        for (size_t i = 0; i < per_worker; ++i) {
            const auto v = static_cast<sat::Var>((w << 14) | (i & 0x3FFF));
            pool.publish_unit(w, mk_lit(v, rng.coin()));
        }
    };
    auto importer = [&](unsigned self, StressSeen* seen) {
        while (!go.load(std::memory_order_acquire)) {}
        for (int round = 0; round < 2000; ++round)
            pool.import(seen->cursor, self, seen->facts);
    };
    std::thread t0(publisher, 0), t1(publisher, 1);
    std::thread t2(importer, 2, s2), t3(importer, 3, s3);
    go.store(true, std::memory_order_release);
    t0.join();
    t1.join();
    t2.join();
    t3.join();
    // Publishers are done: one quiescent drain completes each stream.
    pool.import(s2->cursor, 2, s2->facts);
    pool.import(s3->cursor, 3, s3->facts);
}

void check_well_formed(const StressSeen& s, size_t per_worker) {
    for (const SharedFact& f : s.facts) {
        EXPECT_EQ(f.kind, SharedFact::Kind::kUnit);
        ASSERT_LT(f.worker, 2u)
            << "fact from a worker that never published -- torn read?";
        // The variable must come from that worker's private range.
        EXPECT_EQ(f.a.var() >> 14, f.worker);
        EXPECT_LT(static_cast<size_t>(f.a.var() & 0x3FFF), per_worker);
    }
}

TEST(FactPool, TwoThreadStressNoEvictionDeliversEverythingExactlyOnce) {
    constexpr size_t kPerWorker = 4000;
    SharedFactPool pool(1u << 16, 2 * kPerWorker);  // never wraps
    StressSeen s2, s3;
    run_stress(pool, kPerWorker, &s2, &s3);

    EXPECT_EQ(pool.published(), 2 * kPerWorker);
    for (const StressSeen* s : {&s2, &s3}) {
        check_well_formed(*s, kPerWorker);
        std::set<uint32_t> unique;
        for (const SharedFact& f : s->facts)
            EXPECT_TRUE(unique.insert(f.a.raw()).second)
                << "fact delivered twice to one cursor without eviction";
        EXPECT_EQ(s->facts.size(), 2 * kPerWorker)
            << "a fact was lost although nothing was ever evicted";
    }
}

TEST(FactPool, TwoThreadStressUnderEvictionDeliversOnlyPublishedFacts) {
    constexpr size_t kPerWorker = 4000;
    SharedFactPool pool(1u << 16, 128);  // churns through ~60 evict cycles
    StressSeen s2, s3;
    run_stress(pool, kPerWorker, &s2, &s3);

    EXPECT_EQ(pool.published(), 2 * kPerWorker);
    check_well_formed(s2, kPerWorker);
    check_well_formed(s3, kPerWorker);
    // Lossy, but the quiescent drain guarantees at least the last window.
    EXPECT_GE(s2.facts.size() + s3.facts.size(), pool.capacity());
}

}  // namespace
}  // namespace bosphorus
