// Tests for the concurrent batch-solving runtime: BatchEngine determinism
// against sequential runs, prompt interrupt/cancellation propagation into
// technique iterations, the portfolio racer, and the M4R-by-default
// elimination flag. The 20-instance suites double as the ThreadSanitizer
// CI workload.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "bosphorus/bosphorus.h"
#include "cnfgen/generators.h"
#include "core/xl.h"
#include "runtime/cancellation.h"
#include "util/rng.h"
#include "util/timer.h"

namespace bosphorus {
namespace {

/// The paper's section II-E worked example; unique solution 1,1,1,1,0.
Problem paper_example() {
    auto p = Problem::from_anf_text(
        "x1*x2 + x3 + x4 + 1\n"
        "x1*x2*x3 + x1 + x3 + 1\n"
        "x1*x3 + x3*x4*x5 + x3\n"
        "x2*x3 + x3*x5 + 1\n"
        "x2*x3 + x5 + 1\n");
    EXPECT_TRUE(p.ok());
    return *p;
}

/// Random quadratic system with a planted solution (always SAT) -- the
/// same family bench_batch_throughput races, via the shared generator.
Problem planted_instance(size_t num_vars, size_t num_eqs, Rng& rng) {
    cnfgen::PlantedAnf inst =
        cnfgen::planted_quadratic_anf(num_vars, num_eqs, 3, 1, rng);
    return Problem::from_anf(std::move(inst.polys), inst.num_vars);
}

EngineConfig small_config() {
    EngineConfig cfg;
    cfg.xl.m_budget = 16;
    cfg.elimlin.m_budget = 16;
    cfg.sat_conflicts_start = 1000;
    cfg.sat_conflicts_max = 10'000;
    cfg.sat_conflicts_step = 1000;
    cfg.max_iterations = 8;
    cfg.time_budget_s = 10.0;
    return cfg;
}

void expect_reports_identical(const Report& a, const Report& b, size_t idx) {
    EXPECT_EQ(a.verdict, b.verdict) << "instance " << idx;
    EXPECT_EQ(a.solution, b.solution) << "instance " << idx;
    EXPECT_EQ(a.processed_anf, b.processed_anf) << "instance " << idx;
    EXPECT_EQ(a.iterations, b.iterations) << "instance " << idx;
    EXPECT_EQ(a.total_facts(), b.total_facts()) << "instance " << idx;
    EXPECT_EQ(a.vars_fixed, b.vars_fixed) << "instance " << idx;
    EXPECT_EQ(a.vars_replaced, b.vars_replaced) << "instance " << idx;
    ASSERT_EQ(a.techniques.size(), b.techniques.size());
    for (size_t t = 0; t < a.techniques.size(); ++t) {
        EXPECT_EQ(a.techniques[t].name, b.techniques[t].name);
        EXPECT_EQ(a.techniques[t].steps, b.techniques[t].steps);
        EXPECT_EQ(a.techniques[t].facts, b.techniques[t].facts);
    }
}

/// A Technique whose step never ends on its own: it spins until the
/// engine's stop signal reaches it through the sink. Proxy for "one very
/// long XL iteration".
class SpinUntilCancelled final : public Technique {
public:
    std::string name() const override { return "spin"; }
    StepReport step(core::AnfSystem&, FactSink& sink) override {
        while (!sink.cancelled())
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        return {};
    }
};

// ---- BatchEngine -----------------------------------------------------------

TEST(BatchEngine, TwentyInstanceBatchMatchesSequentialBitForBit) {
    Rng rng(42);
    std::vector<Problem> problems;
    for (int i = 0; i < 20; ++i)
        problems.push_back(planted_instance(14, 20, rng));

    const EngineConfig cfg = small_config();
    std::vector<Report> sequential;
    for (const auto& p : problems) {
        Engine engine(cfg);
        Result<Report> r = engine.run(p);
        ASSERT_TRUE(r.ok());
        sequential.push_back(std::move(*r));
    }

    // Request 8 workers: more threads than cores on most CI boxes,
    // deliberately -- threads_for clamps the request to the hardware, and
    // neither the clamp nor the resulting worker count may change a single
    // bit of the results.
    BatchEngine batch(cfg);
    const auto parallel = batch.solve_all(problems, 8);
    ASSERT_EQ(parallel.size(), problems.size());
    for (size_t i = 0; i < problems.size(); ++i) {
        ASSERT_TRUE(parallel[i].ok()) << parallel[i].status().to_string();
        expect_reports_identical(sequential[i], *parallel[i], i);
    }
}

TEST(BatchEngine, CallbackFiresOncePerInstanceSerialised) {
    Rng rng(7);
    std::vector<Problem> problems;
    for (int i = 0; i < 6; ++i) problems.push_back(planted_instance(10, 14, rng));

    std::vector<int> seen(problems.size(), 0);
    int in_flight = 0;  // serialisation means this never exceeds 1
    bool overlapped = false;
    BatchEngine batch(small_config());
    batch.solve_all(problems, 4,
                    [&](size_t idx, const Result<Report>& r) {
                        if (++in_flight > 1) overlapped = true;
                        EXPECT_TRUE(r.ok());
                        ASSERT_LT(idx, seen.size());
                        ++seen[idx];
                        --in_flight;
                    });
    EXPECT_FALSE(overlapped);
    for (size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], 1) << i;
}

TEST(BatchEngine, EmptyBatchAndPreCancelledBatch) {
    BatchEngine batch(small_config());
    EXPECT_TRUE(batch.solve_all({}, 2).empty());

    runtime::CancellationSource source;
    source.request_cancel();
    batch.set_cancellation_token(source.token());
    std::vector<Problem> problems;
    problems.push_back(paper_example());
    const auto results = batch.solve_all(problems, 2);
    ASSERT_EQ(results.size(), 1u);
    // Cancelled before start: the slot reports kInterrupted, not a Report.
    EXPECT_FALSE(results[0].ok());
    EXPECT_EQ(results[0].status().code(), StatusCode::kInterrupted);
}

// ---- prompt cancellation ---------------------------------------------------

TEST(Cancellation, TokenReachesInsideATechniqueStep) {
    // The spin technique only ever exits if the cancellation token is
    // polled *inside* the step -- step-boundary checks would hang forever.
    Engine engine(EngineConfig{});
    engine.clear_techniques();
    engine.add_technique(std::make_unique<SpinUntilCancelled>());

    runtime::CancellationSource source;
    engine.set_cancellation_token(source.token());

    Timer timer;
    std::thread canceller([&source] {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        source.request_cancel();
    });
    Result<Report> r = engine.run(paper_example());
    canceller.join();

    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->interrupted);
    EXPECT_EQ(r->verdict, sat::Result::kUnknown);
    EXPECT_LT(timer.seconds(), 5.0);  // promptly, not after max_iterations
}

TEST(Cancellation, InterruptCallbackReachesInsideATechniqueStep) {
    // Same promptness contract for the legacy interrupt callback: it is
    // folded into the token FactSink hands to the core loops.
    Engine engine(EngineConfig{});
    engine.clear_techniques();
    engine.add_technique(std::make_unique<SpinUntilCancelled>());

    std::atomic<bool> stop{false};
    engine.set_interrupt_callback([&stop] { return stop.load(); });

    Timer timer;
    std::thread interrupter([&stop] {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        stop.store(true);
    });
    Result<Report> r = engine.run(paper_example());
    interrupter.join();

    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->interrupted);
    EXPECT_LT(timer.seconds(), 5.0);
}

TEST(Cancellation, PreCancelledTokenSkipsCoreXl) {
    // Core-loop contract: a cancelled token makes run_xl bail at its first
    // boundary and return no facts.
    Rng rng(3);
    Problem p = planted_instance(16, 24, rng);
    runtime::CancellationSource source;
    source.request_cancel();
    Rng xl_rng(1);
    const auto facts = core::run_xl(p.polynomials(), core::XlConfig{}, xl_rng,
                                    nullptr, source.token());
    EXPECT_TRUE(facts.empty());
}

// ---- portfolio -------------------------------------------------------------

TEST(Portfolio, DecidesPaperExampleAndReportsLosers) {
    const std::vector<PortfolioEntry> entries =
        default_portfolio(small_config());
    ASSERT_EQ(entries.size(), 4u);

    const Result<PortfolioReport> run =
        solve_portfolio(paper_example(), entries, 2);
    ASSERT_TRUE(run.ok()) << run.status().to_string();

    EXPECT_TRUE(run->decided());
    EXPECT_EQ(run->report.verdict, sat::Result::kSat);
    const std::vector<bool> expected{true, true, true, true, false};
    EXPECT_EQ(run->report.solution, expected);

    ASSERT_EQ(run->outcomes.size(), entries.size());
    EXPECT_LT(run->winner, entries.size());
    EXPECT_EQ(run->winner_name, entries[run->winner].name);
    // The winner's outcome row must agree with the winning report.
    EXPECT_EQ(run->outcomes[run->winner].verdict, run->report.verdict);
}

TEST(Portfolio, EngineStaticForwardsToFreeFunction) {
    const Result<PortfolioReport> run = Engine::solve_portfolio(
        paper_example(), default_portfolio(small_config()), 2);
    ASSERT_TRUE(run.ok());
    EXPECT_EQ(run->report.verdict, sat::Result::kSat);
}

TEST(Portfolio, EmptyEntryListIsInvalidArgument) {
    const Result<PortfolioReport> run =
        solve_portfolio(paper_example(), {}, 2);
    ASSERT_FALSE(run.ok());
    EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);
}

TEST(Portfolio, ExternalCancellationAbortsTheRace) {
    runtime::CancellationSource source;
    source.request_cancel();
    // Every entry sees the external token immediately: nobody decides, and
    // the racer falls back to the most productive (here: any) entry.
    const Result<PortfolioReport> run = solve_portfolio(
        paper_example(), default_portfolio(small_config()), 2,
        source.token());
    ASSERT_TRUE(run.ok());
    EXPECT_FALSE(run->decided());
    for (const auto& o : run->outcomes) {
        EXPECT_EQ(o.verdict, sat::Result::kUnknown) << o.name;
        EXPECT_TRUE(o.interrupted) << o.name;
    }
}

// ---- M4R default elimination path ------------------------------------------

TEST(M4rDefault, XlFactsIdenticalWithAndWithoutM4r) {
    Rng rng(11);
    const Problem p = planted_instance(18, 30, rng);

    core::XlConfig with = {};
    with.m_budget = 16;
    ASSERT_TRUE(with.use_m4r);  // M4R is the default elimination path
    core::XlConfig without = with;
    without.use_m4r = false;

    Rng r1(5), r2(5);  // identical subsampling on both paths
    const auto facts_m4r = core::run_xl(p.polynomials(), with, r1);
    const auto facts_plain = core::run_xl(p.polynomials(), without, r2);
    EXPECT_EQ(facts_m4r, facts_plain);
}

TEST(M4rDefault, FullEngineRunIdenticalWithAndWithoutM4r) {
    Rng rng(13);
    const Problem p = planted_instance(14, 20, rng);

    EngineConfig with = small_config();
    EngineConfig without = small_config();
    without.xl.use_m4r = false;
    without.elimlin.use_m4r = false;
    without.groebner.use_m4r = false;

    Engine e1(with), e2(without);
    Result<Report> r1 = e1.run(p), r2 = e2.run(p);
    ASSERT_TRUE(r1.ok());
    ASSERT_TRUE(r2.ok());
    expect_reports_identical(*r1, *r2, 0);
}

}  // namespace
}  // namespace bosphorus
