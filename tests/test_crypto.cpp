// Tests for the cryptographic benchmark generators: GF(2^e), implicit
// S-box quadratics, small-scale AES, Simon32/64 and SHA-256.
#include <gtest/gtest.h>

#include "crypto/aes_small.h"
#include "crypto/gf2e.h"
#include "crypto/sbox_quadratics.h"
#include "crypto/sha256.h"
#include "crypto/simon.h"
#include "util/rng.h"

namespace bosphorus::crypto {
namespace {

// ---- GF(2^e) ---------------------------------------------------------------

class Gf2eField : public ::testing::TestWithParam<unsigned> {};

TEST_P(Gf2eField, FieldAxioms) {
    const GF2E f(GetParam());
    const unsigned n = f.size();
    for (unsigned a = 0; a < n; ++a) {
        EXPECT_EQ(f.mul(a, 1), a);
        EXPECT_EQ(f.mul(a, 0), 0);
        for (unsigned b = 0; b < n; ++b) {
            EXPECT_EQ(f.mul(a, b), f.mul(b, a));
            for (unsigned c = 0; c < n && a < 16; ++c) {
                EXPECT_EQ(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c)));
                EXPECT_EQ(f.mul(a, f.add(b, c)),
                          f.add(f.mul(a, b), f.mul(a, c)));
            }
        }
    }
}

TEST_P(Gf2eField, Inverses) {
    const GF2E f(GetParam());
    EXPECT_EQ(f.inv(0), 0) << "patched inverse";
    for (unsigned a = 1; a < f.size(); ++a) {
        EXPECT_EQ(f.mul(a, f.inv(a)), 1u) << "a = " << a;
    }
}

TEST_P(Gf2eField, MulByConstMatrixMatchesMul) {
    const GF2E f(GetParam());
    const unsigned e = f.degree();
    for (unsigned c = 0; c < f.size(); ++c) {
        const auto rows = f.mul_by_const_matrix(static_cast<uint8_t>(c));
        for (unsigned x = 0; x < f.size(); ++x) {
            unsigned expect = f.mul(c, static_cast<uint8_t>(x));
            unsigned got = 0;
            for (unsigned i = 0; i < e; ++i) {
                bool bit = false;
                for (unsigned j = 0; j < e; ++j)
                    if ((rows[i] >> j) & 1) bit ^= (x >> j) & 1;
                if (bit) got |= 1u << i;
            }
            EXPECT_EQ(got, expect) << "c=" << c << " x=" << x;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, Gf2eField, ::testing::Values(2u, 3u, 4u, 8u));

TEST(Gf2e, AesMultiplicationKnownValues) {
    const GF2E f(8);
    // Classic AES examples: 0x57 * 0x83 = 0xC1, 0x57 * 0x13 = 0xFE.
    EXPECT_EQ(f.mul(0x57, 0x83), 0xC1);
    EXPECT_EQ(f.mul(0x57, 0x13), 0xFE);
    EXPECT_EQ(f.mul(0x02, 0x80), 0x1B) << "reduction by 0x11B";
}

// ---- S-box quadratics -------------------------------------------------------

TEST(SboxQuadratics, AesSboxHas39Equations) {
    SmallScaleAes::Params p;
    const SmallScaleAes aes(p);
    const auto eqs = sbox_quadratics(aes.sbox_table(), 8);
    // Courtois-Pieprzyk: the AES S-box satisfies exactly 39 linearly
    // independent quadratic equations.
    EXPECT_EQ(eqs.size(), 39u);
    EXPECT_TRUE(verify_quadratics(aes.sbox_table(), 8, eqs));
}

TEST(SboxQuadratics, IdentityMapEquations) {
    // y = x: every pair (x_i + y_i) is an equation; many more quadratics
    // (e.g. x_i y_j + x_i x_j) exist. All must verify.
    std::vector<uint8_t> identity(16);
    for (unsigned i = 0; i < 16; ++i) identity[i] = static_cast<uint8_t>(i);
    const auto eqs = sbox_quadratics(identity, 4);
    EXPECT_TRUE(verify_quadratics(identity, 4, eqs));
    EXPECT_GE(eqs.size(), 4u);
}

class SboxRandom : public ::testing::TestWithParam<int> {};

TEST_P(SboxRandom, EquationsVanishOnAllPoints) {
    Rng rng(GetParam());
    std::vector<uint8_t> table(16);
    for (unsigned i = 0; i < 16; ++i) table[i] = static_cast<uint8_t>(i);
    rng.shuffle(table);  // random bijection on 4 bits
    const auto eqs = sbox_quadratics(table, 4);
    EXPECT_TRUE(verify_quadratics(table, 4, eqs));
    // Forging any equation by flipping a monomial must break it.
    if (!eqs.empty() && !eqs[0].empty()) {
        auto broken = eqs;
        broken[0].push_back({});  // XOR the constant 1 in
        EXPECT_FALSE(verify_quadratics(table, 4, broken));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SboxRandom, ::testing::Range(0, 10));

// ---- small-scale AES --------------------------------------------------------

TEST(AesSmall, SboxMatchesRealAes) {
    SmallScaleAes::Params p;  // e = 8 default
    const SmallScaleAes aes(p);
    EXPECT_EQ(aes.sbox(0x00), 0x63);
    EXPECT_EQ(aes.sbox(0x01), 0x7C);
    EXPECT_EQ(aes.sbox(0x53), 0xED);
    EXPECT_EQ(aes.sbox(0xFF), 0x16);
}

TEST(AesSmall, SboxIsBijective) {
    for (unsigned e : {4u, 8u}) {
        SmallScaleAes::Params p;
        p.e = e;
        p.rows = 2;
        p.cols = 2;
        const SmallScaleAes aes(p);
        std::vector<bool> seen(1u << e, false);
        for (unsigned x = 0; x < (1u << e); ++x) {
            EXPECT_FALSE(seen[aes.sbox(static_cast<uint8_t>(x))]);
            seen[aes.sbox(static_cast<uint8_t>(x))] = true;
        }
    }
}

TEST(AesSmall, EncryptIsDeterministicAndKeyDependent) {
    SmallScaleAes::Params p;
    p.rows = 2;
    p.cols = 2;
    p.e = 4;
    const SmallScaleAes aes(p);
    const std::vector<uint8_t> pt{1, 2, 3, 4}, k1{5, 6, 7, 8}, k2{5, 6, 7, 9};
    EXPECT_EQ(aes.encrypt(pt, k1), aes.encrypt(pt, k1));
    EXPECT_NE(aes.encrypt(pt, k1), aes.encrypt(pt, k2));
}

class AesParams
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned, unsigned,
                                                 unsigned, int>> {};

TEST_P(AesParams, WitnessSatisfiesEncoding) {
    const auto [rounds, rows, cols, e, seed] = GetParam();
    SmallScaleAes::Params p;
    p.rounds = rounds;
    p.rows = rows;
    p.cols = cols;
    p.e = e;
    const SmallScaleAes aes(p);
    Rng rng(seed);
    const auto inst = aes.random_instance(rng);
    ASSERT_EQ(inst.witness.size(), inst.num_vars);
    for (const auto& poly : inst.polys) {
        EXPECT_FALSE(poly.evaluate(inst.witness))
            << "equation violated by the simulated witness: "
            << poly.to_string();
    }
    // The encoding must also be *falsifiable*: a corrupted key bit should
    // break at least one equation (sanity that equations constrain the key).
    std::vector<bool> corrupted = inst.witness;
    corrupted[0] = !corrupted[0];
    bool violated = false;
    for (const auto& poly : inst.polys)
        violated |= poly.evaluate(corrupted);
    EXPECT_TRUE(violated);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AesParams,
    ::testing::Values(std::make_tuple(1u, 1u, 1u, 4u, 1),
                      std::make_tuple(1u, 2u, 2u, 4u, 2),
                      std::make_tuple(2u, 2u, 2u, 4u, 3),
                      std::make_tuple(1u, 2u, 2u, 8u, 4),
                      std::make_tuple(1u, 4u, 4u, 8u, 5),
                      std::make_tuple(2u, 4u, 4u, 8u, 6),
                      std::make_tuple(3u, 2u, 1u, 4u, 7)));

TEST(AesSmall, Sr1448ShapeMatchesPaper) {
    // SR(1,4,4,8): our encoding has 544 variables (the paper's SageMath
    // system reports 800 = 544 + 256 plaintext/ciphertext variables, which
    // we fold in as constants) and ~1100 equations.
    SmallScaleAes::Params p;  // defaults are (1,4,4,8)
    const SmallScaleAes aes(p);
    Rng rng(9);
    const auto inst = aes.random_instance(rng);
    EXPECT_EQ(inst.num_vars, 544u);
    EXPECT_GT(inst.polys.size(), 900u);
    EXPECT_LT(inst.polys.size(), 1300u);
}

// ---- Simon ------------------------------------------------------------------

TEST(Simon, OfficialTestVector) {
    // Simon32/64 test vector from the Simon & Speck paper:
    // key = 0x1918 0x1110 0x0908 0x0100 (k3..k0),
    // plaintext 0x6565 0x6877 -> ciphertext 0xc69b 0xe9bb (32 rounds).
    const Simon32 simon(32);
    const std::vector<uint16_t> key{0x0100, 0x0908, 0x1110, 0x1918};
    const auto ct = simon.encrypt(0x6565, 0x6877, key);
    EXPECT_EQ(ct.first, 0xc69b);
    EXPECT_EQ(ct.second, 0xe9bb);
}

TEST(Simon, RoundKeysPrefixStable) {
    const std::vector<uint16_t> key{1, 2, 3, 4};
    const Simon32 s8(8), s12(12);
    const auto k8 = s8.round_keys(key);
    const auto k12 = s12.round_keys(key);
    ASSERT_EQ(k8.size(), 8u);
    for (size_t i = 0; i < 8; ++i) EXPECT_EQ(k8[i], k12[i]);
}

class SimonParams
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned, int>> {};

TEST_P(SimonParams, WitnessSatisfiesEncoding) {
    const auto [plaintexts, rounds, seed] = GetParam();
    const Simon32 simon(rounds);
    Rng rng(seed);
    const auto inst = simon.encode(plaintexts, rng);
    ASSERT_EQ(inst.witness.size(), inst.num_vars);
    for (const auto& poly : inst.polys) {
        EXPECT_FALSE(poly.evaluate(inst.witness)) << poly.to_string();
    }
    // Variable budget: 64 key bits + 16 per intermediate round per pair.
    const size_t expect_vars =
        64 + static_cast<size_t>(plaintexts) *
                 (rounds >= 3 ? (rounds - 2) * 16 : 0);
    EXPECT_EQ(inst.num_vars, expect_vars);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SimonParams,
    ::testing::Values(std::make_tuple(1u, 2u, 1), std::make_tuple(2u, 4u, 2),
                      std::make_tuple(4u, 6u, 3), std::make_tuple(8u, 6u, 4),
                      std::make_tuple(9u, 7u, 5), std::make_tuple(10u, 8u, 6),
                      std::make_tuple(3u, 10u, 7)));

TEST(Simon, SimilarPlaintextsDifferInOneBit) {
    const Simon32 simon(4);
    Rng rng(11);
    const auto inst = simon.encode(3, rng);
    // Not directly observable from the instance, but the encoding must at
    // least produce equations for each pair and keep the key shared.
    EXPECT_GT(inst.polys.size(), 3u * 16u);
    EXPECT_FALSE(inst.polys.empty());
}

// ---- SHA-256 ----------------------------------------------------------------

TEST(Sha256, CompressMatchesKnownDigest) {
    // SHA-256("abc"): single padded block, full 64 rounds.
    std::array<uint32_t, 16> block{};
    block[0] = 0x61626380;  // "abc" + 0x80
    block[15] = 24;         // bit length
    const auto digest = sha256_compress(block, 64);
    const std::array<uint32_t, 8> expect = {0xba7816bf, 0x8f01cfea, 0x414140de,
                                            0x5dae2223, 0xb00361a3, 0x96177a9c,
                                            0xb410ff61, 0xf20015ad};
    EXPECT_EQ(digest, expect);
}

TEST(Sha256, EmptyStringDigest) {
    std::array<uint32_t, 16> block{};
    block[0] = 0x80000000;
    block[15] = 0;
    const auto digest = sha256_compress(block, 64);
    EXPECT_EQ(digest[0], 0xe3b0c442u);
    EXPECT_EQ(digest[7], 0x7852b855u);
}

class Sha256Params
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned, int>> {};

TEST_P(Sha256Params, WitnessSatisfiesEncoding) {
    const auto [k, rounds, seed] = GetParam();
    Rng rng(seed);
    const auto inst = encode_bitcoin_nonce(k, rounds, rng);
    ASSERT_TRUE(inst.has_witness);
    ASSERT_EQ(inst.witness.size(), inst.num_vars);
    for (const auto& poly : inst.polys) {
        ASSERT_FALSE(poly.evaluate(inst.witness)) << poly.to_string();
    }
    // The witnessed block must genuinely produce k leading zero bits.
    const auto digest = sha256_compress(inst.block, rounds);
    if (k > 0) EXPECT_EQ(digest[0] >> (32 - k), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Sha256Params,
    ::testing::Values(std::make_tuple(1u, 14u, 1), std::make_tuple(4u, 16u, 2),
                      std::make_tuple(6u, 16u, 3),
                      std::make_tuple(8u, 18u, 4),
                      std::make_tuple(4u, 64u, 5)));

TEST(Sha256, RoundsClampedSoNonceMatters) {
    // Regression: with < 14 rounds the nonce words would never enter the
    // compression, leaving an unconstrained instance. The encoder clamps.
    Rng rng(8);
    const auto inst = encode_bitcoin_nonce(4, 8, rng);
    EXPECT_GE(inst.rounds, 14u);
    EXPECT_FALSE(inst.polys.empty());
    // At least one equation must involve a nonce variable.
    bool nonce_used = false;
    for (const auto& p : inst.polys) {
        for (unsigned b = 0; b < 32 && !nonce_used; ++b)
            nonce_used = p.contains_var(static_cast<anf::Var>(b));
        if (nonce_used) break;
    }
    EXPECT_TRUE(nonce_used);
}

TEST(Sha256, InstanceDegreeIsQuadratic) {
    Rng rng(3);
    const auto inst = encode_bitcoin_nonce(4, 16, rng);
    for (const auto& p : inst.polys) EXPECT_LE(p.degree(), 2u);
}

TEST(Sha256, NonceVariablesComeFirst) {
    Rng rng(4);
    const auto inst = encode_bitcoin_nonce(2, 16, rng);
    EXPECT_EQ(inst.nonce_base, 0u);
    for (unsigned b = 0; b < 32; ++b)
        EXPECT_EQ(inst.witness[b], (inst.nonce >> b) & 1);
}

}  // namespace
}  // namespace bosphorus::crypto
