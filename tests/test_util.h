// Shared brute-force oracles for the test suite.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "anf/polynomial.h"
#include "sat/types.h"

namespace bosphorus::testutil {

/// The base seed randomized tests derive their RNG streams from:
/// `fallback` unless the BOSPHORUS_TEST_SEED environment variable
/// overrides it. The chosen seed is announced on stderr the first time it
/// is read, so any failing log carries the line needed to reproduce the
/// run (`BOSPHORUS_TEST_SEED=<n> ./test_...`).
inline uint64_t test_seed(uint64_t fallback = 1) {
    static const uint64_t seed = [fallback] {
        uint64_t s = fallback;
        if (const char* v = std::getenv("BOSPHORUS_TEST_SEED"))
            s = std::strtoull(v, nullptr, 10);
        std::fprintf(stderr,
                     "c test seed: %llu (reproduce with "
                     "BOSPHORUS_TEST_SEED=%llu)\n",
                     static_cast<unsigned long long>(s),
                     static_cast<unsigned long long>(s));
        return s;
    }();
    return seed;
}

/// All satisfying assignments of an ANF system (every polynomial == 0),
/// brute-forced over num_vars <= ~20 variables. Assignments encoded as
/// bitmasks (bit v = variable v).
inline std::vector<uint32_t> anf_models(
    const std::vector<anf::Polynomial>& polys, size_t num_vars) {
    std::vector<uint32_t> models;
    for (uint32_t m = 0; m < (1u << num_vars); ++m) {
        std::vector<bool> a(num_vars);
        for (size_t v = 0; v < num_vars; ++v) a[v] = (m >> v) & 1;
        bool ok = true;
        for (const auto& p : polys) {
            if (p.evaluate(a)) { ok = false; break; }
        }
        if (ok) models.push_back(m);
    }
    return models;
}

/// All satisfying assignments of a CNF (clauses + xors).
inline std::vector<uint32_t> cnf_models(const sat::Cnf& cnf) {
    std::vector<uint32_t> models;
    for (uint32_t m = 0; m < (1u << cnf.num_vars); ++m) {
        bool ok = true;
        for (const auto& clause : cnf.clauses) {
            bool sat_clause = false;
            for (sat::Lit l : clause) {
                const bool val = (m >> l.var()) & 1;
                if (val != l.sign()) { sat_clause = true; break; }
            }
            if (!sat_clause) { ok = false; break; }
        }
        if (ok) {
            for (const auto& x : cnf.xors) {
                bool parity = false;
                for (sat::Var v : x.vars) parity ^= (m >> v) & 1;
                if (parity != x.rhs) { ok = false; break; }
            }
        }
        if (ok) models.push_back(m);
    }
    return models;
}

/// Project CNF models onto the first `keep` variables, deduplicated.
inline std::vector<uint32_t> project_models(std::vector<uint32_t> models,
                                            size_t keep) {
    const uint32_t mask = keep >= 32 ? 0xFFFFFFFFu : ((1u << keep) - 1);
    for (auto& m : models) m &= mask;
    std::sort(models.begin(), models.end());
    models.erase(std::unique(models.begin(), models.end()), models.end());
    return models;
}

}  // namespace bosphorus::testutil
