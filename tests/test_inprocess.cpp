// Tests for the native solver's in-processing engine
// (src/sat/inprocess/): instance features, profile selection,
// vivification soundness, tiered learnt-DB invariants and the
// process-global observability counters.
#include "sat/inprocess/inprocess.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "cnfgen/generators.h"
#include "sat/inprocess/features.h"
#include "sat/inprocess/profiles.h"
#include "sat/solver.h"
#include "test_util.h"
#include "util/rng.h"

namespace bosphorus::sat {
namespace {

using inprocess::InstanceFeatures;
using inprocess::ProfileId;
using testutil::cnf_models;

Lit pos(Var v) { return mk_lit(v, false); }
Lit neg(Var v) { return mk_lit(v, true); }

Solver::Config inproc_config(bool enabled) {
    Solver::Config cfg;
    cfg.inprocess.enabled = enabled;
    return cfg;
}

/// Brute-force verdict of `cnf` under `assumptions` (models are bitmasks
/// with bit v = value of variable v, as produced by testutil::cnf_models).
Result oracle_verdict(const Cnf& cnf, const std::vector<Lit>& assumptions) {
    for (const uint32_t model : cnf_models(cnf)) {
        bool consistent = true;
        for (const Lit a : assumptions) {
            const bool val = (model >> a.var()) & 1;
            if (val == a.sign()) {  // sign = negated
                consistent = false;
                break;
            }
        }
        if (consistent) return Result::kSat;
    }
    return Result::kUnsat;
}

// ---- instance features ----------------------------------------------------

TEST(InstanceFeatures, FromCnfCountsAndHistogram) {
    Cnf cnf;
    cnf.num_vars = 10;
    cnf.add_clause({pos(0), pos(1)});                                 // binary
    cnf.add_clause({pos(2), neg(3), pos(4)});                         // ternary
    cnf.add_clause({pos(0), pos(2), pos(4), pos(5), pos(6), pos(7),
                    pos(8)});                                         // long
    cnf.xors.push_back({{0, 1, 2}, true});

    const InstanceFeatures f = InstanceFeatures::from_cnf(cnf);
    EXPECT_EQ(f.num_vars, 10u);
    EXPECT_EQ(f.num_clauses, 3u);
    EXPECT_EQ(f.num_xors, 1u);
    EXPECT_DOUBLE_EQ(f.clause_var_ratio, 4.0 / 10.0);
    EXPECT_DOUBLE_EQ(f.xor_density, 1.0 / 4.0);
    EXPECT_DOUBLE_EQ(f.mean_clause_size, (2.0 + 3.0 + 7.0) / 3.0);
    EXPECT_DOUBLE_EQ(f.frac_binary, 1.0 / 3.0);
    EXPECT_DOUBLE_EQ(f.frac_ternary, 1.0 / 3.0);
    EXPECT_DOUBLE_EQ(f.frac_long, 1.0 / 3.0);
    EXPECT_DOUBLE_EQ(f.avg_first_window_lbd, 0.0);
}

TEST(InstanceFeatures, SolverExtractMatchesFromCnf) {
    Rng rng(testutil::test_seed(42));
    Cnf cnf = cnfgen::random_ksat(8, 20, 3, rng);
    cnf.xors.push_back({{0, 1, 2, 3}, false});
    cnf.xors.push_back({{2, 4, 6}, true});

    Solver::Config cfg;
    cfg.enable_xor = true;
    Solver s(cfg);
    ASSERT_TRUE(s.load(cnf));

    const InstanceFeatures a = InstanceFeatures::from_cnf(cnf);
    const InstanceFeatures b = InstanceFeatures::extract(s);
    EXPECT_EQ(a.num_vars, b.num_vars);
    EXPECT_EQ(a.num_xors, b.num_xors);
    // load() canonicalises clauses (dedup, tautology removal), so allow
    // the counts to differ only downward.
    EXPECT_LE(b.num_clauses, a.num_clauses);
    EXPECT_GT(b.num_clauses, 0u);
}

// ---- profiles -------------------------------------------------------------

TEST(Profiles, NameRoundTrip) {
    for (const ProfileId id :
         {ProfileId::kAuto, ProfileId::kFixed, ProfileId::kBalanced,
          ProfileId::kCryptoXor, ProfileId::kAgileRestart,
          ProfileId::kHeavyTail}) {
        ProfileId back;
        ASSERT_TRUE(inprocess::profile_from_name(
            inprocess::profile_name(id), back))
            << inprocess::profile_name(id);
        EXPECT_EQ(back, id);
    }
    ProfileId id;
    EXPECT_FALSE(inprocess::profile_from_name("bogus", id));
    EXPECT_FALSE(inprocess::profile_from_name("", id));
}

TEST(Profiles, SelectionRule) {
    InstanceFeatures f;
    f.clause_var_ratio = 4.0;
    EXPECT_EQ(inprocess::select_profile(f), ProfileId::kBalanced);

    f.xor_density = 0.10;
    EXPECT_EQ(inprocess::select_profile(f), ProfileId::kCryptoXor);

    f.xor_density = 0.0;
    f.avg_first_window_lbd = 15.0;
    EXPECT_EQ(inprocess::select_profile(f), ProfileId::kHeavyTail);

    f.avg_first_window_lbd = 3.0;
    f.clause_var_ratio = 8.0;
    f.frac_long = 0.1;
    EXPECT_EQ(inprocess::select_profile(f), ProfileId::kAgileRestart);

    f.frac_long = 0.5;  // long clauses: rapid restarts lose their edge
    EXPECT_EQ(inprocess::select_profile(f), ProfileId::kBalanced);
}

// ---- vivification ---------------------------------------------------------

TEST(Vivifier, ShrinksSubsumedTail) {
    // (x1 | x2) makes x3 redundant in (x1 | x2 | x3): assuming ~x1, ~x2
    // conflicts (or satisfies) before x3 is ever reached.
    Solver s(inproc_config(true));
    const Var x1 = s.new_var(), x2 = s.new_var(), x3 = s.new_var();
    ASSERT_TRUE(s.add_clause({pos(x1), pos(x2)}));
    ASSERT_TRUE(s.add_clause({pos(x1), pos(x2), pos(x3)}));

    const auto ps = s.debug_force_vivify(10'000);
    EXPECT_GE(ps.clauses_shrunk, 1u);
    EXPECT_GE(ps.literals_removed, 1u);
    EXPECT_TRUE(s.check_db_invariants());
    EXPECT_EQ(s.solve(), Result::kSat);
}

TEST(Vivifier, DerivesUnitFromConflictingAssumptionWalk) {
    // (a | d) and (a | ~d) together imply a, so vivifying (a | b | c)
    // conflicts right after assuming ~a and the clause collapses to the
    // unit a. (Unit propagation alone cannot see this: no literal of the
    // clause is falsified at level 0.)
    Solver s(inproc_config(true));
    const Var a = s.new_var(), d = s.new_var();
    const Var b = s.new_var(), c = s.new_var();
    ASSERT_TRUE(s.add_clause({pos(a), pos(d)}));
    ASSERT_TRUE(s.add_clause({pos(a), neg(d)}));
    ASSERT_TRUE(s.add_clause({pos(a), pos(b), pos(c)}));

    const auto ps = s.debug_force_vivify(10'000);
    EXPECT_EQ(ps.units_derived, 1u);
    EXPECT_EQ(s.value(pos(a)), LBool::kTrue);  // now a level-0 fact
    EXPECT_TRUE(s.check_db_invariants());
    // The derived unit is exported as a learnt fact on the next solve.
    ASSERT_EQ(s.solve(), Result::kSat);
    const auto& units = s.learnt_units();
    EXPECT_TRUE(std::find(units.begin(), units.end(), pos(a)) != units.end());
}

TEST(Vivifier, DeletesSatisfiedClause) {
    // The unit must be added AFTER the long clause: add_clause()
    // canonicalises against the current level-0 trail, so the reverse
    // order would drop the clause before it ever reaches the DB.
    Solver s(inproc_config(true));
    const Var u = s.new_var(), x = s.new_var(), y = s.new_var();
    ASSERT_TRUE(s.add_clause({pos(u), pos(x), pos(y)}));
    ASSERT_TRUE(s.add_clause({pos(u)}));

    const auto ps = s.debug_force_vivify(10'000);
    EXPECT_EQ(ps.clauses_deleted, 1u);
    EXPECT_TRUE(s.check_db_invariants());
    EXPECT_EQ(s.solve(), Result::kSat);
}

TEST(Vivifier, PreservesModelSetExactly) {
    // Strong soundness check: vivification must not add or lose a single
    // model. Verified against every full assignment of small random
    // instances.
    const uint64_t base_seed = testutil::test_seed(7);
    for (int inst = 0; inst < 8; ++inst) {
        Rng rng(base_seed * 1000003 + inst * 797 + 13);
        const size_t n = 7;
        Cnf cnf = cnfgen::random_ksat(n, 18, 3, rng);
        const auto models = cnf_models(cnf);

        Solver s(inproc_config(true));
        ASSERT_TRUE(s.load(cnf));
        s.debug_force_vivify(100'000);
        ASSERT_TRUE(s.check_db_invariants());

        // Probe all 2^n assignments through assumptions: the rewritten
        // formula must accept exactly the original model set.
        for (uint32_t bits = 0; bits < (1u << n); ++bits) {
            std::vector<Lit> assume;
            for (size_t v = 0; v < n; ++v) {
                assume.push_back(
                    mk_lit(static_cast<Var>(v), ((bits >> v) & 1) == 0));
            }
            const bool is_model =
                std::find(models.begin(), models.end(), bits) != models.end();
            const Result r = s.solve_assuming(assume);
            EXPECT_EQ(r, is_model ? Result::kSat : Result::kUnsat)
                << "inst " << inst << " bits " << bits;
            if (!s.okay()) break;  // formula proved UNSAT outright
        }
    }
}

// ---- tiered learnt DB -----------------------------------------------------

/// Run a search hard enough to force reductions, with structural
/// invariants spot-checked from inside the search via the terminate
/// callback. `expected` is the instance's known verdict (the brute-force
/// oracle is far too slow at these sizes).
void run_reduction_stress(Solver& s, const Cnf& cnf, Result expected) {
    ASSERT_TRUE(s.load(cnf));
    bool invariants_held = true;
    int polls = 0;
    s.set_terminate_callback([&s, &invariants_held, &polls]() {
        // Polled at conflict/decision boundaries, where the clause DB is
        // in a consistent state. The full check is O(db size), so only
        // every 64th poll actually runs it.
        if ((++polls & 63) == 0 && !s.check_db_invariants())
            invariants_held = false;
        return false;
    });
    const Result r = s.solve(200'000);
    EXPECT_TRUE(invariants_held);
    EXPECT_TRUE(s.check_db_invariants());
    EXPECT_EQ(r, expected);
}

TEST(ClauseDb, LegacyReduceKeepsInvariants) {
    // The pre-in-processing reduce_db path (inprocess.enabled = false):
    // pinned before and preserved by the tiered refactor. PHP(8, 7) is
    // hard enough (~3k conflicts) to push past the legacy 1000-learnt
    // floor; smaller pigeonholes finish before any reduction fires.
    Cnf cnf = cnfgen::pigeonhole(7);  // UNSAT, conflict-heavy
    Solver s(inproc_config(false));
    run_reduction_stress(s, cnf, Result::kUnsat);
    EXPECT_GT(s.stats().deleted_clauses, 0u);
    EXPECT_EQ(s.stats().db_reductions, 0u);  // tiered path never engaged
}

TEST(ClauseDb, TieredReduceKeepsInvariantsAndProtections) {
    Cnf cnf = cnfgen::pigeonhole(7);
    Solver::Config cfg = inproc_config(true);
    cfg.inprocess.local_cap_min = 40;  // force frequent reductions
    cfg.inprocess.vivify = false;      // isolate the DB manager
    Solver s(cfg);
    run_reduction_stress(s, cnf, Result::kUnsat);
    EXPECT_GT(s.stats().db_reductions, 0u);
    // Glue never reaches the local tier (classify() sends LBD <= 2 to
    // core/mid and LBD refreshes only promote), so the deletion pass must
    // never even have to veto one. Reason-locked vetoes ARE expected:
    // reductions run mid-search where locked local clauses are normal.
    EXPECT_EQ(s.db_glue_delete_vetoes(), 0u);
}

TEST(ClauseDb, ForcedSweepKeepsPropagationIntegrity) {
    const uint64_t base_seed = testutil::test_seed(11);
    for (int inst = 0; inst < 6; ++inst) {
        Rng rng(base_seed * 1000003 + inst * 797 + 13);
        Cnf cnf = cnfgen::random_ksat(7, 24, 3, rng);
        Solver s(inproc_config(true));
        ASSERT_TRUE(s.load(cnf));
        const Result first = s.solve();
        ASSERT_TRUE(s.check_db_invariants());
        s.debug_force_reduce();
        ASSERT_TRUE(s.check_db_invariants());
        // The sweep must not change the verdict of a re-solve.
        EXPECT_EQ(s.solve(), first);
        EXPECT_EQ(first, oracle_verdict(cnf, {}));
    }
}

TEST(ClauseDb, TierStatePersistsAcrossSolveCalls) {
    Cnf cnf = cnfgen::pigeonhole(5);
    Solver::Config cfg = inproc_config(true);
    cfg.inprocess.local_cap_min = 40;
    Solver s(cfg);
    ASSERT_TRUE(s.load(cnf));

    // A budgeted first call leaves learnt clauses behind...
    s.solve(400);
    const auto after_first = s.db_tier_counts();
    const uint64_t reductions_first = s.stats().db_reductions;
    EXPECT_GT(after_first.total(), 0u);

    // ...and a second call continues from that state instead of resetting
    // the cap: the counts stay consistent and reductions keep counting up.
    s.solve(400);
    EXPECT_TRUE(s.check_db_invariants());
    EXPECT_GE(s.stats().db_reductions, reductions_first);
    EXPECT_GT(s.db_tier_counts().total(), 0u);
}

// ---- warm-vs-cold and on-vs-off differentials -----------------------------

TEST(Inprocess, OnVsOffVerdictsAgreeUnderAssumptionSweeps) {
    const uint64_t base_seed = testutil::test_seed(23);
    for (int inst = 0; inst < 5; ++inst) {
        Rng rng(base_seed * 1000003 + inst * 797 + 13);
        Cnf cnf = cnfgen::random_ksat(8, 26, 3, rng);

        Solver on(inproc_config(true));
        Solver off(inproc_config(false));
        ASSERT_TRUE(on.load(cnf));
        ASSERT_TRUE(off.load(cnf));

        // Warm sweep: both solvers answer a sequence of assumption sets;
        // both are exact, so every verdict must match the oracle.
        for (int q = 0; q < 12; ++q) {
            std::vector<Lit> assume;
            for (Var v = 0; v < 3; ++v) {
                assume.push_back(
                    mk_lit((v * 7 + q) % 8, ((q >> v) & 1) != 0));
            }
            const Result want = oracle_verdict(cnf, assume);
            EXPECT_EQ(on.solve_assuming(assume), want)
                << "inprocess on, inst " << inst << " query " << q;
            EXPECT_EQ(off.solve_assuming(assume), want)
                << "inprocess off, inst " << inst << " query " << q;
            if (!on.okay() || !off.okay()) break;
        }
    }
}

TEST(Inprocess, AutoProfileResolvesPerSolve) {
    // XOR-dense instance: the kAuto rule must land on crypto-xor. Built
    // with native XOR rows (cnfgen::xor_cycle expands to plain CNF, which
    // would leave the density feature at zero).
    Cnf cnf;
    cnf.num_vars = 12;
    for (uint32_t i = 0; i < 12; ++i)
        cnf.xors.push_back({{i, (i + 1) % 12}, false});  // all-equal: SAT
    cnf.add_clause({pos(0), pos(5)});
    Solver::Config cfg = inproc_config(true);
    cfg.enable_xor = true;
    Solver s(cfg);
    ASSERT_TRUE(s.load(cnf));
    EXPECT_EQ(s.active_profile(), ProfileId::kFixed);  // nothing applied yet
    ASSERT_EQ(s.solve(), Result::kSat);
    EXPECT_EQ(s.active_profile(), ProfileId::kCryptoXor);

    // A plain 3-SAT instance resolves to a non-crypto profile.
    Rng rng2(testutil::test_seed(31) + 1);
    Cnf plain = cnfgen::random_ksat(8, 26, 3, rng2);
    Solver s2(inproc_config(true));
    ASSERT_TRUE(s2.load(plain));
    s2.solve();
    EXPECT_NE(s2.active_profile(), ProfileId::kCryptoXor);
    EXPECT_NE(s2.active_profile(), ProfileId::kFixed);
}

TEST(Inprocess, FixedProfileHonoursExplicitKnobs) {
    Solver::Config cfg = inproc_config(true);
    cfg.inprocess.profile = ProfileId::kFixed;
    cfg.restart_base = 37;
    Solver s(cfg);
    Rng rng(testutil::test_seed(37));
    Cnf cnf = cnfgen::random_ksat(7, 22, 3, rng);
    ASSERT_TRUE(s.load(cnf));
    const Result r = s.solve();
    EXPECT_EQ(s.active_profile(), ProfileId::kFixed);
    EXPECT_EQ(r, oracle_verdict(cnf, {}));
}

// ---- global counters ------------------------------------------------------

TEST(InprocessCounters, AdvanceAndUnregisterOnDestruction) {
    auto& g = inprocess::counters();
    const uint64_t passes_before =
        g.vivify_passes.load(std::memory_order_relaxed);
    const int64_t gauge_before =
        g.tier_core.load(std::memory_order_relaxed) +
        g.tier_mid.load(std::memory_order_relaxed) +
        g.tier_local.load(std::memory_order_relaxed);
    {
        Cnf cnf = cnfgen::pigeonhole(7);
        Solver::Config cfg = inproc_config(true);
        cfg.inprocess.local_cap_min = 40;  // reductions publish the gauges
        Solver s(cfg);
        ASSERT_TRUE(s.load(cnf));
        // Vivify before solving: the instance is UNSAT, and vivification
        // is a no-op once the solver has hit bottom.
        s.debug_force_vivify(10'000);
        EXPECT_GT(g.vivify_passes.load(std::memory_order_relaxed),
                  passes_before);
        s.solve(200'000);
    }
    // The solver's ClauseDbManager unregistered its gauge share.
    const int64_t gauge_after =
        g.tier_core.load(std::memory_order_relaxed) +
        g.tier_mid.load(std::memory_order_relaxed) +
        g.tier_local.load(std::memory_order_relaxed);
    EXPECT_EQ(gauge_after, gauge_before);
}

}  // namespace
}  // namespace bosphorus::sat
