#include "sat/solver.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "cnfgen/generators.h"
#include "sat/dimacs.h"
#include "sat/preprocess.h"
#include "sat/solve_cnf.h"
#include "test_util.h"
#include "util/rng.h"

namespace bosphorus::sat {
namespace {

using testutil::cnf_models;

Lit pos(Var v) { return mk_lit(v, false); }
Lit neg(Var v) { return mk_lit(v, true); }

TEST(Lit, Encoding) {
    const Lit l = mk_lit(3, true);
    EXPECT_EQ(l.var(), 3u);
    EXPECT_TRUE(l.sign());
    EXPECT_EQ((~l).sign(), false);
    EXPECT_EQ(l.to_dimacs(), -4);
    EXPECT_EQ((~l).to_dimacs(), 4);
}

TEST(Solver, EmptyFormulaIsSat) {
    Solver s;
    EXPECT_EQ(s.solve(), Result::kSat);
}

TEST(Solver, UnitClauses) {
    Solver s;
    const Var a = s.new_var(), b = s.new_var();
    EXPECT_TRUE(s.add_clause({pos(a)}));
    EXPECT_TRUE(s.add_clause({neg(b)}));
    ASSERT_EQ(s.solve(), Result::kSat);
    EXPECT_EQ(s.model()[a], LBool::kTrue);
    EXPECT_EQ(s.model()[b], LBool::kFalse);
}

TEST(Solver, ContradictoryUnitsAreUnsat) {
    Solver s;
    const Var a = s.new_var();
    EXPECT_TRUE(s.add_clause({pos(a)}));
    EXPECT_FALSE(s.add_clause({neg(a)}));
    EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(Solver, TautologyIgnored) {
    Solver s;
    const Var a = s.new_var();
    EXPECT_TRUE(s.add_clause({pos(a), neg(a)}));
    EXPECT_EQ(s.solve(), Result::kSat);
}

TEST(Solver, DuplicateLiteralsCollapsed) {
    Solver s;
    const Var a = s.new_var();
    EXPECT_TRUE(s.add_clause({pos(a), pos(a)}));
    ASSERT_EQ(s.solve(), Result::kSat);
    EXPECT_EQ(s.model()[a], LBool::kTrue);
}

TEST(Solver, EmptyClauseIsUnsat) {
    Solver s;
    EXPECT_FALSE(s.add_clause({}));
    EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(Solver, SimpleImplicationChain) {
    Solver s;
    std::vector<Var> v;
    for (int i = 0; i < 10; ++i) v.push_back(s.new_var());
    for (int i = 0; i + 1 < 10; ++i)
        s.add_clause({neg(v[i]), pos(v[i + 1])});  // v_i -> v_{i+1}
    s.add_clause({pos(v[0])});
    ASSERT_EQ(s.solve(), Result::kSat);
    for (int i = 0; i < 10; ++i) EXPECT_EQ(s.model()[v[i]], LBool::kTrue);
}

TEST(Solver, RequiresRealSearch) {
    // (a|b) & (!a|b) & (a|!b) forces a=b=1.
    Solver s;
    const Var a = s.new_var(), b = s.new_var();
    s.add_clause({pos(a), pos(b)});
    s.add_clause({neg(a), pos(b)});
    s.add_clause({pos(a), neg(b)});
    ASSERT_EQ(s.solve(), Result::kSat);
    EXPECT_EQ(s.model()[a], LBool::kTrue);
    EXPECT_EQ(s.model()[b], LBool::kTrue);
}

TEST(Solver, PigeonholeUnsat) {
    for (unsigned holes : {3u, 4u, 5u}) {
        Solver s;
        EXPECT_TRUE(s.load(cnfgen::pigeonhole(holes)));
        EXPECT_EQ(s.solve(), Result::kUnsat) << "PHP(" << holes + 1 << ","
                                             << holes << ")";
    }
}

TEST(Solver, ConflictBudgetReturnsUnknown) {
    // A hard instance with a tiny budget must return kUnknown.
    Solver s;
    s.load(cnfgen::pigeonhole(8));
    EXPECT_EQ(s.solve(/*conflict_budget=*/5), Result::kUnknown);
    EXPECT_LE(s.stats().conflicts, 6u);
}

TEST(Solver, LearntUnitsAreSound) {
    // Any literal the solver exports as a learnt unit must hold in every
    // model of the formula.
    Rng rng(42);
    for (int inst = 0; inst < 10; ++inst) {
        const Cnf cnf = cnfgen::random_ksat(8, 30, 3, rng);
        const auto models = cnf_models(cnf);
        Solver s;
        if (!s.load(cnf)) continue;
        s.solve();
        for (const Lit u : s.learnt_units()) {
            for (const uint32_t m : models) {
                const bool val = (m >> u.var()) & 1;
                EXPECT_EQ(val, !u.sign())
                    << "learnt unit contradicts a model";
            }
        }
    }
}

TEST(Solver, XorConstraintBasic) {
    Solver::Config cfg;
    cfg.enable_xor = true;
    Solver s(cfg);
    const Var a = s.new_var(), b = s.new_var(), c = s.new_var();
    EXPECT_TRUE(s.add_xor({{a, b, c}, true}));
    EXPECT_TRUE(s.add_clause({pos(a)}));
    EXPECT_TRUE(s.add_clause({neg(b)}));
    ASSERT_EQ(s.solve(), Result::kSat);
    // a=1, b=0 -> c must be 0 (1^0^0 = 1).
    EXPECT_EQ(s.model()[c], LBool::kFalse);
}

TEST(Solver, XorUnsatCycle) {
    // x^y=0, y^z=0, x^z=1 is inconsistent.
    Solver::Config cfg;
    cfg.enable_xor = true;
    Solver s(cfg);
    const Var x = s.new_var(), y = s.new_var(), z = s.new_var();
    s.add_xor({{x, y}, false});
    s.add_xor({{y, z}, false});
    s.add_xor({{x, z}, true});
    EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(Solver, XorExpansionWithoutEngineMatches) {
    // The same XOR system must get the same verdict with and without the
    // native engine.
    Rng rng(3);
    for (int inst = 0; inst < 10; ++inst) {
        std::vector<XorConstraint> xors;
        const size_t nv = 6;
        for (int i = 0; i < 7; ++i) {
            XorConstraint x;
            const size_t len = 2 + rng.below(3);
            for (size_t j = 0; j < len; ++j)
                x.vars.push_back(static_cast<Var>(rng.below(nv)));
            x.rhs = rng.coin();
            xors.push_back(std::move(x));
        }
        Result r_native, r_plain;
        {
            Solver::Config cfg;
            cfg.enable_xor = true;
            Solver s(cfg);
            for (size_t v = 0; v < nv; ++v) s.new_var();
            bool ok = true;
            for (const auto& x : xors) ok = ok && s.add_xor(x);
            r_native = ok ? s.solve() : Result::kUnsat;
        }
        {
            Solver s;
            for (size_t v = 0; v < nv; ++v) s.new_var();
            bool ok = true;
            for (const auto& x : xors) ok = ok && s.add_xor(x);
            r_plain = ok ? s.solve() : Result::kUnsat;
        }
        EXPECT_EQ(r_native, r_plain) << "instance " << inst;
    }
}

TEST(Solver, XorLongChainCutCorrectly) {
    // A 12-variable XOR without native support exercises the internal
    // cutting path; pin all but one variable and check the implied value.
    Solver s;
    std::vector<Var> vars;
    for (int i = 0; i < 12; ++i) vars.push_back(s.new_var());
    XorConstraint x;
    x.vars = vars;
    x.rhs = true;
    EXPECT_TRUE(s.add_xor(x));
    for (int i = 0; i < 11; ++i) s.add_clause({neg(vars[i])});  // all 0
    ASSERT_EQ(s.solve(), Result::kSat);
    EXPECT_EQ(s.model()[vars[11]], LBool::kTrue);
}

// ---- XorEngine backtracking edges ----------------------------------------

TEST(Solver, XorConstantsOnTrailAtAddTime) {
    // add_xor does not fold the trail eagerly: variables already assigned
    // at add time are evaluated lazily during propagation. Fix a=1 and
    // b=0 via units *before* registering the row.
    {
        Solver::Config cfg;
        cfg.enable_xor = true;
        Solver s(cfg);
        const Var a = s.new_var(), b = s.new_var(), c = s.new_var();
        ASSERT_TRUE(s.add_clause({pos(a)}));
        ASSERT_TRUE(s.add_clause({neg(b)}));
        ASSERT_TRUE(s.add_xor({{a, b, c}, true}));
        ASSERT_EQ(s.solve(), Result::kSat);
        EXPECT_EQ(s.model()[c], LBool::kFalse);  // 1^0^c = 1 -> c = 0
    }
    // All variables of the row already assigned, wrong parity: the
    // constraint is violated the moment it is registered.
    {
        Solver::Config cfg;
        cfg.enable_xor = true;
        Solver s(cfg);
        const Var a = s.new_var(), b = s.new_var(), c = s.new_var();
        ASSERT_TRUE(s.add_clause({pos(a)}));
        ASSERT_TRUE(s.add_clause({neg(b)}));
        ASSERT_TRUE(s.add_clause({neg(c)}));
        s.add_xor({{a, b, c}, false});  // 1^0^0 = 1 != 0
        EXPECT_EQ(s.solve(), Result::kUnsat);
    }
    // Same trail, right parity: satisfiable, values unchanged.
    {
        Solver::Config cfg;
        cfg.enable_xor = true;
        Solver s(cfg);
        const Var a = s.new_var(), b = s.new_var(), c = s.new_var();
        ASSERT_TRUE(s.add_clause({pos(a)}));
        ASSERT_TRUE(s.add_clause({neg(b)}));
        ASSERT_TRUE(s.add_clause({neg(c)}));
        ASSERT_TRUE(s.add_xor({{a, b, c}, true}));
        ASSERT_EQ(s.solve(), Result::kSat);
        EXPECT_EQ(s.model()[a], LBool::kTrue);
    }
}

TEST(Solver, XorFullyAssignedRowConflictsAtNonZeroLevel) {
    // A 3-variable row survives the level-0 Gauss-Jordan pass (only
    // weight <= 2 rows are rewritten into units/binaries), so the search
    // must hit it as a *runtime* conflict: deciding e propagates d
    // through the binary clauses, d floods a, b, c in one clause-
    // propagation batch, and the XOR engine then finds the row fully
    // assigned with wrong parity at a non-zero decision level.
    Solver::Config cfg;
    cfg.enable_xor = true;
    Solver s(cfg);
    const Var a = s.new_var(), b = s.new_var(), c = s.new_var();
    const Var d = s.new_var(), e = s.new_var();
    ASSERT_TRUE(s.add_xor({{a, b, c}, true}));
    ASSERT_TRUE(s.add_clause({neg(d), pos(a)}));
    ASSERT_TRUE(s.add_clause({neg(d), pos(b)}));
    ASSERT_TRUE(s.add_clause({neg(d), neg(c)}));  // d -> parity(a,b,c) = 0
    ASSERT_TRUE(s.add_clause({pos(d), pos(e)}));
    ASSERT_TRUE(s.add_clause({pos(d), neg(e)}));  // ~d is contradictory
    EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(Solver, XorQheadSurvivesDeepBacktracksAcrossAssumptionSolves) {
    // Every solve ends with a backtrack to level 0 and a qhead reset
    // (set_qhead); re-solving under different assumptions must
    // re-propagate the same rows from scratch. A stale qhead would skip
    // trail entries and mispropagate the second call.
    Solver::Config cfg;
    cfg.enable_xor = true;
    Solver s(cfg);
    const Var a = s.new_var(), b = s.new_var(), c = s.new_var();
    const Var x = s.new_var(), y = s.new_var();
    ASSERT_TRUE(s.add_xor({{a, b, c}, true}));
    ASSERT_TRUE(s.add_xor({{c, x, y}, false}));

    ASSERT_EQ(s.solve_assuming({pos(a), pos(b), pos(x)}), Result::kSat);
    EXPECT_EQ(s.model()[c], LBool::kTrue);   // 1^1^c = 1 -> c = 1
    EXPECT_EQ(s.model()[y], LBool::kFalse);  // 1^1^y = 0 -> y = 0

    ASSERT_EQ(s.solve_assuming({pos(a), neg(b), pos(x)}), Result::kSat);
    EXPECT_EQ(s.model()[c], LBool::kFalse);  // 1^0^c = 1 -> c = 0
    EXPECT_EQ(s.model()[y], LBool::kTrue);   // 0^1^y = 0 -> y = 1

    // Contradictory assumptions (a=1, b=1 forces c=1): UNSAT under the
    // assumptions only -- the solver itself stays healthy.
    ASSERT_EQ(s.solve_assuming({pos(a), pos(b), neg(c)}), Result::kUnsat);
    EXPECT_TRUE(s.okay());

    // And a plain solve afterwards still works off the reset queue.
    ASSERT_EQ(s.solve(), Result::kSat);
}

TEST(Solver, XorMixedRandomDifferentialAgainstBruteForce) {
    // Random CNF+XOR instances through the native engine vs brute force:
    // deep backtracks, full-row runtime conflicts, reason-clause
    // materialisation and qhead resets all get exercised here.
    const uint64_t base_seed = testutil::test_seed();
    for (int inst = 0; inst < 30; ++inst) {
        Rng rng(base_seed * 1000003 + inst * 797 + 13);
        Cnf cnf = cnfgen::random_ksat(7, 12, 3, rng);
        const size_t n_xors = 2 + rng.below(3);
        for (size_t i = 0; i < n_xors; ++i) {
            XorConstraint x;
            const size_t len = 3 + rng.below(3);  // >= 3: survives GJ
            for (size_t j = 0; j < len; ++j)
                x.vars.push_back(static_cast<Var>(rng.below(cnf.num_vars)));
            x.rhs = rng.coin();
            cnf.xors.push_back(std::move(x));
        }
        const auto models = cnf_models(cnf);

        Solver::Config scfg;
        scfg.enable_xor = true;
        Solver s(scfg);
        const bool load_ok = s.load(cnf);
        const Result r = load_ok ? s.solve() : Result::kUnsat;
        if (models.empty()) {
            EXPECT_EQ(r, Result::kUnsat) << "instance " << inst;
        } else {
            ASSERT_EQ(r, Result::kSat) << "instance " << inst;
            uint32_t m = 0;
            for (size_t v = 0; v < cnf.num_vars; ++v)
                if (s.model()[v] == LBool::kTrue) m |= 1u << v;
            EXPECT_TRUE(std::find(models.begin(), models.end(), m) !=
                        models.end())
                << "instance " << inst << " returned a non-model";
        }
    }
}

// ---- brute-force equivalence sweeps -------------------------------------

class SolverRandom : public ::testing::TestWithParam<int> {};

TEST_P(SolverRandom, AgreesWithBruteForce) {
    Rng rng(GetParam());
    const size_t nv = 4 + rng.below(7);             // 4..10 vars
    const size_t nc = nv * 3 + rng.below(nv * 3);   // mixed density
    const Cnf cnf = cnfgen::random_ksat(nv, nc, 3, rng);
    const auto models = cnf_models(cnf);

    Solver s;
    const bool load_ok = s.load(cnf);
    const Result r = load_ok ? s.solve() : Result::kUnsat;
    if (models.empty()) {
        EXPECT_EQ(r, Result::kUnsat);
    } else {
        ASSERT_EQ(r, Result::kSat);
        uint32_t m = 0;
        for (size_t v = 0; v < nv; ++v)
            if (s.model()[v] == LBool::kTrue) m |= 1u << v;
        EXPECT_NE(std::find(models.begin(), models.end(), m), models.end())
            << "reported model does not satisfy the formula";
    }
}

TEST_P(SolverRandom, AllKindsAgree) {
    Rng rng(GetParam() + 10'000);
    const size_t nv = 5 + rng.below(6);
    const Cnf cnf = cnfgen::random_ksat(nv, nv * 4 + rng.below(nv), 3, rng);
    const bool expect_sat = !cnf_models(cnf).empty();
    for (const SolverKind kind :
         {SolverKind::kMinisatLike, SolverKind::kLingelingLike,
          SolverKind::kCmsLike}) {
        const CnfSolveOutcome out = solve_cnf(cnf, kind);
        EXPECT_EQ(out.result, expect_sat ? Result::kSat : Result::kUnsat)
            << solver_kind_name(kind);
        if (out.result == Result::kSat) {
            EXPECT_TRUE(model_satisfies(cnf, out.model))
                << solver_kind_name(kind);
        }
    }
}

TEST_P(SolverRandom, XorRichInstancesAllKinds) {
    Rng rng(GetParam() + 20'000);
    const size_t len = 6 + rng.below(10);
    const bool satisfiable = rng.coin();
    const Cnf cnf = cnfgen::xor_cycle(len, satisfiable, rng);
    for (const SolverKind kind :
         {SolverKind::kMinisatLike, SolverKind::kLingelingLike,
          SolverKind::kCmsLike}) {
        const CnfSolveOutcome out = solve_cnf(cnf, kind);
        EXPECT_EQ(out.result,
                  satisfiable ? Result::kSat : Result::kUnsat)
            << solver_kind_name(kind) << " len=" << len;
        if (out.result == Result::kSat)
            EXPECT_TRUE(model_satisfies(cnf, out.model));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverRandom, ::testing::Range(0, 30));

// ---- preprocessor ---------------------------------------------------------

class PreprocessRandom : public ::testing::TestWithParam<int> {};

TEST_P(PreprocessRandom, PreservesSatisfiabilityAndExtendsModels) {
    Rng rng(GetParam() + 777);
    const size_t nv = 5 + rng.below(6);
    const Cnf cnf = cnfgen::random_ksat(nv, nv * 3 + rng.below(2 * nv), 3,
                                        rng);
    const bool expect_sat = !cnf_models(cnf).empty();

    Cnf simplified = cnf;
    Preprocessor prep;
    const bool pre_ok = prep.simplify(simplified);
    if (!pre_ok) {
        EXPECT_FALSE(expect_sat) << "preprocessor claimed UNSAT on SAT";
        return;
    }
    Solver s;
    const bool load_ok = s.load(simplified);
    const Result r = load_ok ? s.solve() : Result::kUnsat;
    EXPECT_EQ(r == Result::kSat, expect_sat);
    if (r == Result::kSat) {
        std::vector<LBool> model(s.model());
        model.resize(cnf.num_vars, LBool::kFalse);
        prep.extend_model(model);
        EXPECT_TRUE(model_satisfies(cnf, model))
            << "extended model must satisfy the ORIGINAL formula";
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PreprocessRandom, ::testing::Range(0, 30));

// ---- XOR recovery ---------------------------------------------------------

TEST(RecoverXors, FindsEncodedXor) {
    // Encode a ^ b ^ c = 1 as its 4 CNF clauses and recover it.
    Cnf cnf;
    cnf.num_vars = 3;
    for (uint32_t bits = 0; bits < 8; ++bits) {
        bool parity = false;
        for (int i = 0; i < 3; ++i) parity ^= (bits >> i) & 1;
        if (parity) continue;  // wrong-parity assignments are forbidden
        std::vector<Lit> clause;
        for (int i = 0; i < 3; ++i)
            clause.push_back(mk_lit(i, (bits >> i) & 1));
        cnf.add_clause(std::move(clause));
    }
    const auto xors = recover_xors(cnf);
    ASSERT_EQ(xors.size(), 1u);
    EXPECT_EQ(xors[0].vars, (std::vector<Var>{0, 1, 2}));
    EXPECT_TRUE(xors[0].rhs);
}

TEST(RecoverXors, IgnoresPartialGroups) {
    Cnf cnf;
    cnf.num_vars = 3;
    cnf.add_clause({pos(0), pos(1), pos(2)});
    cnf.add_clause({neg(0), neg(1), pos(2)});
    // Only 2 of the 4 clauses of an XOR: no recovery.
    EXPECT_TRUE(recover_xors(cnf).empty());
}

TEST(RecoverXors, BinaryEquivalence) {
    Cnf cnf;
    cnf.num_vars = 2;
    cnf.add_clause({pos(0), neg(1)});
    cnf.add_clause({neg(0), pos(1)});  // a == b, i.e. a ^ b = 0
    const auto xors = recover_xors(cnf);
    ASSERT_EQ(xors.size(), 1u);
    EXPECT_FALSE(xors[0].rhs);
}

/// Encode vars ^ ... = rhs as its full 2^(l-1) clause group.
void encode_xor(Cnf& cnf, const std::vector<Var>& vars, bool rhs) {
    const size_t l = vars.size();
    for (uint32_t bits = 0; bits < (1u << l); ++bits) {
        bool parity = false;
        for (size_t i = 0; i < l; ++i) parity ^= (bits >> i) & 1;
        if (parity == rhs) continue;  // satisfying assignment, allowed
        std::vector<Lit> clause;
        for (size_t i = 0; i < l; ++i)
            clause.push_back(mk_lit(vars[i], ((bits >> i) & 1) != 0));
        cnf.add_clause(std::move(clause));
    }
}

TEST(RecoverXors, MaxLenBoundaryIsInclusive) {
    // Size-2 (the lower bound) and size-max_len groups are recovered;
    // a size-(max_len + 1) group is not scanned at all.
    for (const size_t max_len : {3u, 4u, 5u}) {
        Cnf cnf;
        cnf.num_vars = 2 + max_len + (max_len + 1);
        encode_xor(cnf, {0, 1}, true);                      // size 2
        std::vector<Var> at_limit, beyond;
        for (size_t i = 0; i < max_len; ++i)
            at_limit.push_back(static_cast<Var>(2 + i));
        for (size_t i = 0; i < max_len + 1; ++i)
            beyond.push_back(static_cast<Var>(2 + max_len + i));
        encode_xor(cnf, at_limit, false);                   // size max_len
        encode_xor(cnf, beyond, true);                      // one too long
        const auto xors = recover_xors(cnf, max_len);
        ASSERT_EQ(xors.size(), 2u) << "max_len=" << max_len;
        EXPECT_EQ(xors[0].vars, (std::vector<Var>{0, 1}));
        EXPECT_TRUE(xors[0].rhs);
        EXPECT_EQ(xors[1].vars, at_limit);
        EXPECT_FALSE(xors[1].rhs);
    }
}

TEST(RecoverXors, DuplicateClausesInAGroupDoNotFakeAFullSet) {
    // 3 of the 4 clauses of a ^ b ^ c = 1, one of them repeated: the
    // group reaches the 2^(l-1) clause *count* but only 3 distinct sign
    // patterns -- no XOR may be recovered.
    Cnf cnf;
    cnf.num_vars = 3;
    cnf.add_clause({pos(0), pos(1), pos(2)});
    cnf.add_clause({neg(0), neg(1), pos(2)});
    cnf.add_clause({neg(0), pos(1), neg(2)});
    cnf.add_clause({neg(0), pos(1), neg(2)});  // duplicate
    EXPECT_TRUE(recover_xors(cnf).empty());

    // With the genuine fourth pattern added, recovery works even though
    // the duplicate is still present.
    cnf.add_clause({pos(0), neg(1), neg(2)});
    const auto xors = recover_xors(cnf);
    ASSERT_EQ(xors.size(), 1u);
    EXPECT_EQ(xors[0].vars, (std::vector<Var>{0, 1, 2}));
    EXPECT_TRUE(xors[0].rhs);
}

TEST(RecoverXors, OneClauseShortOfAFullGroupIsNotRecovered) {
    // All but one of the 8 clauses of a 4-variable XOR: no recovery.
    Cnf cnf;
    cnf.num_vars = 4;
    encode_xor(cnf, {0, 1, 2, 3}, true);
    ASSERT_EQ(cnf.clauses.size(), 8u);
    cnf.clauses.pop_back();
    EXPECT_TRUE(recover_xors(cnf).empty());
}

TEST(RecoverXors, BothPolaritiesOverOneVariableSet) {
    // a ^ b = 0 and a ^ b = 1 together (UNSAT, but recovery is purely
    // syntactic): both XORs are found over the same variable set.
    Cnf cnf;
    cnf.num_vars = 2;
    encode_xor(cnf, {0, 1}, false);
    encode_xor(cnf, {0, 1}, true);
    const auto xors = recover_xors(cnf);
    ASSERT_EQ(xors.size(), 2u);
    EXPECT_NE(xors[0].rhs, xors[1].rhs);
}

// ---- DIMACS ---------------------------------------------------------------

TEST(Dimacs, ParseBasic) {
    const Cnf cnf = read_dimacs_from_string(
        "c comment\np cnf 3 2\n1 -2 0\n-1 3 0\n");
    EXPECT_EQ(cnf.num_vars, 3u);
    ASSERT_EQ(cnf.clauses.size(), 2u);
    EXPECT_EQ(cnf.clauses[0][0].to_dimacs(), 1);
    EXPECT_EQ(cnf.clauses[0][1].to_dimacs(), -2);
}

TEST(Dimacs, ParseXorLines) {
    const Cnf cnf = read_dimacs_from_string("p cnf 3 1\nx1 -2 3 0\n");
    ASSERT_EQ(cnf.xors.size(), 1u);
    EXPECT_EQ(cnf.xors[0].vars, (std::vector<Var>{0, 1, 2}));
    // x1 ^ !x2 ^ x3 = 1  <=>  x1 ^ x2 ^ x3 = 0.
    EXPECT_FALSE(cnf.xors[0].rhs);
}

TEST(Dimacs, Errors) {
    EXPECT_THROW(read_dimacs_from_string("1 2 0\n"), DimacsError);
    EXPECT_THROW(read_dimacs_from_string("p dnf 1 1\n1 0\n"), DimacsError);
}

TEST(Dimacs, RoundTrip) {
    Rng rng(5);
    const Cnf cnf = cnfgen::random_ksat(10, 30, 3, rng);
    std::ostringstream out;
    write_dimacs(out, cnf);
    const Cnf back = read_dimacs_from_string(out.str());
    EXPECT_EQ(back.num_vars, cnf.num_vars);
    ASSERT_EQ(back.clauses.size(), cnf.clauses.size());
    for (size_t i = 0; i < cnf.clauses.size(); ++i)
        EXPECT_EQ(back.clauses[i], cnf.clauses[i]);
}

// ---- incremental solving under assumptions --------------------------------

TEST(SolverAssumptions, FailedAssumptionsDoNotPoisonTheInstance) {
    Solver s;
    const Var a = s.new_var(), b = s.new_var();
    EXPECT_TRUE(s.add_clause({pos(a), pos(b)}));
    EXPECT_TRUE(s.add_clause({neg(a), pos(b)}));  // implies b under !a...

    // UNSAT only *under* the assumptions:
    EXPECT_EQ(s.solve_assuming({neg(a), neg(b)}), Result::kUnsat);
    EXPECT_TRUE(s.okay()) << "assumption failure must not set UNSAT";

    // The same instance keeps solving, warm:
    EXPECT_EQ(s.solve_assuming({pos(a)}), Result::kSat);
    EXPECT_EQ(s.model()[a], LBool::kTrue);
    EXPECT_EQ(s.solve_assuming({neg(a)}), Result::kSat);
    EXPECT_EQ(s.model()[b], LBool::kTrue) << "(!a | b) forces b under !a";
    EXPECT_EQ(s.solve(), Result::kSat);
}

TEST(SolverAssumptions, AssumptionSweepMatchesRefresh) {
    // A random 3-SAT instance: sweeping assumptions over one warm solver
    // must agree with a fresh solver per candidate.
    Rng rng(99);
    const Cnf cnf = cnfgen::random_ksat(12, 40, 3, rng);
    Solver warm;
    ASSERT_TRUE(warm.load(cnf));
    for (unsigned mask = 0; mask < 8; ++mask) {
        std::vector<Lit> assumptions;
        for (Var v = 0; v < 3; ++v)
            assumptions.push_back(mk_lit(v, !((mask >> v) & 1)));

        Solver fresh;
        ASSERT_TRUE(fresh.load(cnf));
        for (const Lit l : assumptions) ASSERT_TRUE(fresh.add_clause({l}));

        const Result expect = fresh.okay() ? fresh.solve() : Result::kUnsat;
        EXPECT_EQ(warm.solve_assuming(assumptions), expect)
            << "candidate " << mask;
        EXPECT_TRUE(warm.okay());
    }
}

TEST(SolverAssumptions, ContradictoryPairFailsImmediately) {
    Solver s;
    const Var a = s.new_var();
    (void)s.new_var();
    EXPECT_EQ(s.solve_assuming({pos(a), neg(a)}), Result::kUnsat);
    EXPECT_TRUE(s.okay());
    EXPECT_EQ(s.solve(), Result::kSat);
}

TEST(SolverAssumptions, XorEngineHonoursAssumptions) {
    Solver::Config cfg;
    cfg.enable_xor = true;
    Solver s(cfg);
    const Var a = s.new_var(), b = s.new_var(), c = s.new_var();
    EXPECT_TRUE(s.add_xor({{a, b, c}, true}));  // a ^ b ^ c = 1

    ASSERT_EQ(s.solve_assuming({pos(a), pos(b)}), Result::kSat);
    EXPECT_EQ(s.model()[c], LBool::kTrue) << "1 ^ 1 ^ c = 1 forces c = 1";
    ASSERT_EQ(s.solve_assuming({pos(a), neg(b)}), Result::kSat);
    EXPECT_EQ(s.model()[c], LBool::kFalse);
}

TEST(Dimacs, XorRoundTripPreservesSemantics) {
    Cnf cnf;
    cnf.num_vars = 4;
    cnf.xors.push_back({{0, 1, 3}, true});
    cnf.xors.push_back({{1, 2}, false});
    std::ostringstream out;
    write_dimacs(out, cnf);
    const Cnf back = read_dimacs_from_string(out.str());
    ASSERT_EQ(back.xors.size(), 2u);
    EXPECT_EQ(cnf_models(back), cnf_models(cnf));
}

}  // namespace
}  // namespace bosphorus::sat
