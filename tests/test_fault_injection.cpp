// The deterministic fault-injection framework and the resilience layer
// built on it: FaultInjector plan parsing / determinism / caps, the
// HealthTracker circuit breaker, ResilientBackend retry / fallback /
// garbage-rejection behaviour under injected faults, and the service's
// queue-delay site. Every armed fault must end in a correct verdict or a
// structured error -- never a crash, a hang past the deadline, or a wrong
// answer. All randomness derives from BOSPHORUS_TEST_SEED.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "bosphorus/bosphorus.h"
#include "bosphorus/sat_backend.h"
#include "bosphorus/service.h"
#include "test_util.h"
#include "util/fault.h"

namespace bosphorus {
namespace {

using fault::FaultInjector;
using fault::ScopedFaultPlan;
using fault::Site;
using sat::BackendRegistry;
using sat::HealthTracker;
using sat::LBool;
using sat::Lit;
using sat::mk_lit;
using sat::SolverSpec;

std::string seeded(const std::string& plan) {
    return plan + ",seed=" + std::to_string(testutil::test_seed());
}

/// Deltas of the process-global resilience counters across a test body.
struct CounterDelta {
    uint64_t attempts, retries, fallbacks, garbage, exhausted;
    static CounterDelta now() {
        const auto& c = sat::resilience_counters();
        return {c.attempts.load(), c.retries.load(), c.fallbacks.load(),
                c.garbage_rejected.load(), c.exhausted.load()};
    }
};

/// A backend from the registry, leaving the circuit-breaker state as the
/// test arranged it.
std::unique_ptr<sat::SolverBackend> make_backend_keeping_health(
    const std::string& spec) {
    auto r = BackendRegistry::global().create(SolverSpec{spec});
    EXPECT_TRUE(r.ok()) << r.status().to_string();
    return r.ok() ? std::move(*r) : nullptr;
}

/// A fresh backend from the registry, with chain health forgotten so one
/// test's injected failures cannot trip another test's circuit breaker.
std::unique_ptr<sat::SolverBackend> make_backend(const std::string& spec) {
    BackendRegistry::global().health().reset();
    return make_backend_keeping_health(spec);
}

/// (x0 | x1) & (~x0 | x2) & (~x1 | ~x2): satisfiable, 3 variables.
void load_sat_instance(sat::SolverBackend& b) {
    b.ensure_vars(3);
    b.add_clause({mk_lit(0, false), mk_lit(1, false)});
    b.add_clause({mk_lit(0, true), mk_lit(2, false)});
    b.add_clause({mk_lit(1, true), mk_lit(2, true)});
}

/// x0 & ~x0 via two units: trivially unsatisfiable.
void load_unsat_instance(sat::SolverBackend& b) {
    b.ensure_vars(1);
    b.add_clause({mk_lit(0, false)});
    b.add_clause({mk_lit(0, true)});
}

void expect_sat_model(sat::SolverBackend& b) {
    const bool x0 = b.value(0) == LBool::kTrue;
    const bool x1 = b.value(1) == LBool::kTrue;
    const bool x2 = b.value(2) == LBool::kTrue;
    EXPECT_TRUE(x0 || x1);
    EXPECT_TRUE(!x0 || x2);
    EXPECT_TRUE(!x1 || !x2);
}

// ---- FaultInjector ---------------------------------------------------------

TEST(FaultInjector, ArmDisarmRoundTrip) {
    auto& inj = FaultInjector::global();
    ASSERT_TRUE(inj.arm("backend-crash=1,seed=3").ok());
    EXPECT_TRUE(inj.armed());
    EXPECT_EQ(inj.plan(), "backend-crash=1,seed=3");
    ASSERT_TRUE(inj.arm("").ok());
    EXPECT_FALSE(inj.armed());
    EXPECT_EQ(inj.plan(), "");
    EXPECT_FALSE(inj.should_fire(Site::kBackendCrash));
}

TEST(FaultInjector, MalformedPlanKeepsThePreviousOne) {
    ScopedFaultPlan plan("io-enospc=1,seed=4");
    ASSERT_TRUE(plan.status().ok());
    auto& inj = FaultInjector::global();
    for (const char* bad :
         {"no-such-site=1", "backend-crash=2", "backend-crash",
          "backend-crash=0.5@x", "seed=notanumber", "backend-crash=-0.5"}) {
        const Status s = inj.arm(bad);
        EXPECT_FALSE(s.ok()) << bad;
        EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << bad;
        EXPECT_EQ(inj.plan(), "io-enospc=1,seed=4") << bad;
        EXPECT_TRUE(inj.armed()) << bad;
    }
}

TEST(FaultInjector, ProbabilityOneAlwaysFiresAndUnlistedSitesNever) {
    ScopedFaultPlan plan("io-enospc=1,seed=5");
    ASSERT_TRUE(plan.status().ok());
    auto& inj = FaultInjector::global();
    for (int i = 0; i < 100; ++i) {
        EXPECT_TRUE(inj.should_fire(Site::kIoEnospc));
        EXPECT_FALSE(inj.should_fire(Site::kIoShortWrite));
    }
}

TEST(FaultInjector, CapBoundsTheNumberOfFirings) {
    ScopedFaultPlan plan("backend-crash=1@3,seed=9");
    ASSERT_TRUE(plan.status().ok());
    auto& inj = FaultInjector::global();
    int fired = 0;
    for (int i = 0; i < 20; ++i)
        if (inj.should_fire(Site::kBackendCrash)) ++fired;
    EXPECT_EQ(fired, 3);

    bool found = false;
    for (const auto& [name, st] : inj.stats()) {
        if (name != "backend-crash") continue;
        found = true;
        EXPECT_EQ(st.evaluated, 20u);
        EXPECT_EQ(st.fired, 3u);
    }
    EXPECT_TRUE(found);
    EXPECT_EQ(inj.total_fired(), 3u);
}

TEST(FaultInjector, OutcomeSequenceIsAPureFunctionOfThePlan) {
    const std::string plan = seeded("queue-delay=0.5");
    std::vector<bool> first, second;
    {
        ScopedFaultPlan scoped(plan);
        ASSERT_TRUE(scoped.status().ok());
        for (int i = 0; i < 64; ++i)
            first.push_back(
                FaultInjector::global().should_fire(Site::kQueueDelay));
    }
    {
        ScopedFaultPlan scoped(plan);
        ASSERT_TRUE(scoped.status().ok());
        for (int i = 0; i < 64; ++i)
            second.push_back(
                FaultInjector::global().should_fire(Site::kQueueDelay));
    }
    EXPECT_EQ(first, second);
}

// ---- HealthTracker ---------------------------------------------------------

TEST(HealthTracker, OpensAfterConsecutiveFailures) {
    HealthTracker h;
    h.set_config({/*failure_threshold=*/3, /*open_cooldown_s=*/60.0});
    EXPECT_TRUE(h.allow("b"));
    h.record_failure("b");
    h.record_failure("b");
    EXPECT_TRUE(h.allow("b")) << "below threshold: still closed";
    h.record_failure("b");
    EXPECT_FALSE(h.allow("b")) << "third consecutive failure opens";

    const auto snaps = h.snapshot();
    ASSERT_EQ(snaps.size(), 1u);
    EXPECT_EQ(snaps[0].backend, "b");
    EXPECT_EQ(snaps[0].state, HealthTracker::CircuitState::kOpen);
    EXPECT_EQ(snaps[0].failures, 3u);
    EXPECT_EQ(snaps[0].opens, 1u);
    EXPECT_EQ(h.total_opens(), 1u);
}

TEST(HealthTracker, SuccessResetsTheConsecutiveCount) {
    HealthTracker h;
    h.set_config({3, 60.0});
    h.record_failure("b");
    h.record_failure("b");
    h.record_success("b");
    h.record_failure("b");
    h.record_failure("b");
    EXPECT_TRUE(h.allow("b")) << "the success broke the streak";
}

TEST(HealthTracker, HalfOpenProbeRecoversOrReopens) {
    HealthTracker h;
    h.set_config({1, /*open_cooldown_s=*/0.02});
    h.record_failure("b");
    EXPECT_FALSE(h.allow("b"));
    std::this_thread::sleep_for(std::chrono::milliseconds(40));

    // Cooldown over: exactly one caller becomes the probe.
    EXPECT_TRUE(h.allow("b"));
    EXPECT_FALSE(h.allow("b")) << "second caller must wait out the probe";

    // Failed probe: straight back to open, without a threshold's worth
    // of failures.
    h.record_failure("b");
    EXPECT_FALSE(h.allow("b"));
    EXPECT_EQ(h.total_opens(), 2u);

    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    EXPECT_TRUE(h.allow("b"));
    h.record_success("b");
    EXPECT_TRUE(h.allow("b")) << "successful probe closes the circuit";
    const auto snaps = h.snapshot();
    ASSERT_EQ(snaps.size(), 1u);
    EXPECT_EQ(snaps[0].state, HealthTracker::CircuitState::kClosed);
}

// ---- ResilientBackend ------------------------------------------------------

TEST(ResilientBackend, SpecParsing) {
    auto& reg = BackendRegistry::global();
    EXPECT_TRUE(reg.contains("resilient"));
    EXPECT_FALSE(reg.create(SolverSpec{"resilient"}).ok());
    EXPECT_FALSE(reg.create(SolverSpec{"resilient:"}).ok());
    EXPECT_FALSE(reg.create(SolverSpec{"resilient:retries=2"}).ok())
        << "options alone name no backend";
    EXPECT_FALSE(reg.create(SolverSpec{"resilient:resilient:minisat"}).ok())
        << "chains do not nest";
    EXPECT_FALSE(
        reg.create(SolverSpec{"resilient:minisat,retries=banana"}).ok());
    EXPECT_TRUE(
        reg.create(SolverSpec{"resilient:minisat,cms,retries=2"}).ok());
    // A typo'd primary with a healthy fallback is survivable by design.
    EXPECT_TRUE(reg.create(SolverSpec{"resilient:no-such,minisat"}).ok());
    // An unknown primary alone still constructs: the implicit in-process
    // floor is appended as the fallback.
    EXPECT_TRUE(reg.create(SolverSpec{"resilient:no-such"}).ok());
    // Nothing usable anywhere (the lone in-process entry rejects its
    // argument, so no floor is appended): fail fast at construction.
    EXPECT_FALSE(reg.create(SolverSpec{"resilient:minisat:x"}).ok());
}

TEST(ResilientBackend, VerdictsMatchWithoutFaults) {
    auto b = make_backend("resilient:minisat");
    ASSERT_NE(b, nullptr);
    load_sat_instance(*b);
    EXPECT_EQ(b->solve(), sat::Result::kSat);
    expect_sat_model(*b);

    auto u = make_backend("resilient:minisat");
    ASSERT_NE(u, nullptr);
    load_unsat_instance(*u);
    EXPECT_EQ(u->solve(), sat::Result::kUnsat);
    EXPECT_FALSE(u->okay());
}

TEST(ResilientBackend, RetriesThroughInjectedCrashes) {
    ScopedFaultPlan plan(seeded("backend-crash=1@2"));
    ASSERT_TRUE(plan.status().ok());
    const CounterDelta before = CounterDelta::now();

    auto b = make_backend("resilient:minisat,backoff=0.001");
    ASSERT_NE(b, nullptr);
    load_sat_instance(*b);
    EXPECT_EQ(b->solve(), sat::Result::kSat)
        << "two crashed attempts, then the third succeeds";
    expect_sat_model(*b);

    const CounterDelta after = CounterDelta::now();
    EXPECT_GE(after.retries - before.retries, 2u);
    EXPECT_GE(after.attempts - before.attempts, 3u);
}

TEST(ResilientBackend, FallsBackDownTheChain) {
    // retries=0: one attempt per entry. The single crash consumes the
    // primary; the fallback answers.
    ScopedFaultPlan plan(seeded("backend-crash=1@1"));
    ASSERT_TRUE(plan.status().ok());
    const CounterDelta before = CounterDelta::now();

    auto b = make_backend("resilient:minisat,cms,retries=0,backoff=0.001");
    ASSERT_NE(b, nullptr);
    load_sat_instance(*b);
    EXPECT_EQ(b->solve(), sat::Result::kSat);
    expect_sat_model(*b);

    const CounterDelta after = CounterDelta::now();
    EXPECT_GE(after.fallbacks - before.fallbacks, 1u);
}

TEST(ResilientBackend, GarbageModelIsRejectedAndRetried) {
    ScopedFaultPlan plan(seeded("backend-garbage=1@1"));
    ASSERT_TRUE(plan.status().ok());
    const CounterDelta before = CounterDelta::now();

    auto b = make_backend("resilient:minisat,backoff=0.001");
    ASSERT_NE(b, nullptr);
    // x0 & (~x0 | x1): the unique model is {x0=1, x1=1}, and its
    // complement violates the unit clause -- so the injected corruption
    // (which flips every value) cannot slip past verification.
    b->ensure_vars(2);
    b->add_clause({mk_lit(0, false)});
    b->add_clause({mk_lit(0, true), mk_lit(1, false)});
    EXPECT_EQ(b->solve(), sat::Result::kSat);
    EXPECT_EQ(b->value(0), LBool::kTrue);  // the corruption never escaped
    EXPECT_EQ(b->value(1), LBool::kTrue);

    const CounterDelta after = CounterDelta::now();
    EXPECT_GE(after.garbage - before.garbage, 1u);
}

TEST(ResilientBackend, GarbageCannotTouchAnUnsatVerdict) {
    ScopedFaultPlan plan(seeded("backend-garbage=1"));
    ASSERT_TRUE(plan.status().ok());
    auto b = make_backend("resilient:minisat");
    ASSERT_NE(b, nullptr);
    load_unsat_instance(*b);
    EXPECT_EQ(b->solve(), sat::Result::kUnsat);
}

TEST(ResilientBackend, ExhaustedChainDegradesToUnknown) {
    // Every in-process attempt crashes, uncapped: the chain runs dry and
    // the decorator reports kUnknown -- a structured non-verdict, never a
    // crash or a lie.
    ScopedFaultPlan plan(seeded("backend-crash=1"));
    ASSERT_TRUE(plan.status().ok());
    const CounterDelta before = CounterDelta::now();

    auto b = make_backend("resilient:minisat,retries=1,backoff=0.001");
    ASSERT_NE(b, nullptr);
    load_sat_instance(*b);
    EXPECT_EQ(b->solve(), sat::Result::kUnknown);

    const CounterDelta after = CounterDelta::now();
    EXPECT_GE(after.exhausted - before.exhausted, 1u);
    // The injected failures must be visible to the circuit breaker.
    EXPECT_GE(BackendRegistry::global().health().snapshot().size(), 1u);
    BackendRegistry::global().health().reset();
}

TEST(ResilientBackend, OpenCircuitSkipsThePrimary) {
    auto& health = BackendRegistry::global().health();
    health.reset();
    health.set_config({3, /*open_cooldown_s=*/60.0});
    for (int i = 0; i < 3; ++i) health.record_failure("minisat");
    const CounterDelta before = CounterDelta::now();

    auto b = make_backend_keeping_health("resilient:minisat,cms");
    ASSERT_NE(b, nullptr);
    load_sat_instance(*b);
    EXPECT_EQ(b->solve(), sat::Result::kSat)
        << "the fallback answers while the primary's circuit is open";

    const CounterDelta after = CounterDelta::now();
    EXPECT_GE(after.fallbacks - before.fallbacks, 1u);
    health.reset();
    health.set_config({});
}

TEST(ResilientBackend, LastChainEntryIsExemptFromTheCircuit) {
    auto& health = BackendRegistry::global().health();
    health.reset();
    health.set_config({3, 60.0});
    for (int i = 0; i < 3; ++i) health.record_failure("minisat");

    auto b = make_backend_keeping_health("resilient:minisat");
    ASSERT_NE(b, nullptr);
    load_sat_instance(*b);
    EXPECT_EQ(b->solve(), sat::Result::kSat)
        << "degradation always has a landing spot";
    health.reset();
    health.set_config({});
}

// ---- service: queue-delay + fault plan plumbing ----------------------------

TEST(ServiceFaults, QueueDelayedJobStillCompletesAndIsCounted) {
    struct Disarm {
        ~Disarm() { (void)FaultInjector::global().arm(""); }
    } disarm;

    ServiceConfig cfg;
    cfg.n_workers = 1;
    cfg.fault_plan = seeded("queue-delay=1");
    SolveService svc(cfg);

    auto p = Problem::from_anf_text("x1*x2 + x3\n");
    ASSERT_TRUE(p.ok());
    JobRequest req;
    req.client = "chaos";
    req.problem = *p;
    const Result<JobId> id = svc.submit(std::move(req));
    ASSERT_TRUE(id.ok()) << id.status().to_string();
    const Result<JobOutcome> out = svc.wait(*id);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out->state, JobState::kDone);

    const ServiceStats stats = svc.stats();
    EXPECT_EQ(stats.fault_plan, cfg.fault_plan);
    EXPECT_GE(stats.faults_injected, 1u);
    svc.shutdown();
}

}  // namespace
}  // namespace bosphorus
