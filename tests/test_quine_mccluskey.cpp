#include "minimize/quine_mccluskey.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace bosphorus::minimize {
namespace {

/// Brute-force check: the cover is exactly the ON-set.
void expect_exact_cover(const std::vector<Implicant>& cover,
                        const std::vector<bool>& on_set, unsigned k) {
    for (uint32_t m = 0; m < (1u << k); ++m) {
        bool covered = false;
        for (const auto& imp : cover) {
            if (imp.covers(m)) { covered = true; break; }
        }
        EXPECT_EQ(covered, static_cast<bool>(on_set[m])) << "minterm " << m;
    }
}

TEST(QuineMccluskey, EmptyOnSet) {
    std::vector<bool> on(4, false);
    EXPECT_TRUE(prime_implicants(on, 2).empty());
    EXPECT_TRUE(minimize_sop(on, 2).empty());
}

TEST(QuineMccluskey, FullOnSetIsOneCube) {
    std::vector<bool> on(8, true);
    const auto cover = minimize_sop(on, 3);
    ASSERT_EQ(cover.size(), 1u);
    EXPECT_EQ(cover[0].mask, 0u) << "tautological cube";
}

TEST(QuineMccluskey, SingleMinterm) {
    std::vector<bool> on(8, false);
    on[5] = true;  // x0=1, x1=0, x2=1
    const auto cover = minimize_sop(on, 3);
    ASSERT_EQ(cover.size(), 1u);
    EXPECT_EQ(cover[0].mask, 7u);
    EXPECT_EQ(cover[0].value, 5u);
}

TEST(QuineMccluskey, ClassicTextbookExample) {
    // f(a,b,c,d) with on-set {4,8,10,11,12,15} (classic QM example);
    // the minimal cover has 4 terms (with don't-cares it would be fewer;
    // we use none).
    std::vector<bool> on(16, false);
    for (int m : {4, 8, 10, 11, 12, 15}) on[m] = true;
    const auto cover = minimize_sop(on, 4);
    expect_exact_cover(cover, on, 4);
    EXPECT_LE(cover.size(), 4u);
}

TEST(QuineMccluskey, ParityHasNoMerging) {
    // XOR of 3 variables: all prime implicants are the minterms themselves.
    std::vector<bool> on(8, false);
    for (uint32_t m = 0; m < 8; ++m) {
        const bool parity = ((m & 1) != 0) ^ ((m & 2) != 0) ^ ((m & 4) != 0);
        on[m] = parity;
    }
    const auto primes = prime_implicants(on, 3);
    EXPECT_EQ(primes.size(), 4u);
    for (const auto& p : primes) EXPECT_EQ(p.mask, 7u);
    const auto cover = minimize_sop(on, 3);
    EXPECT_EQ(cover.size(), 4u);
    expect_exact_cover(cover, on, 3);
}

TEST(QuineMccluskey, Fig3PaperPolynomial) {
    // x1x3 + x1 + x2 + x4 + 1 (paper Fig. 3): the minimal CNF cover has 6
    // clauses (paper Fig. 2, left).
    // Variable order: bit 0 = x1, bit 1 = x2, bit 2 = x3, bit 3 = x4.
    std::vector<bool> on(16, false);
    for (uint32_t m = 0; m < 16; ++m) {
        const bool x1 = m & 1, x2 = (m >> 1) & 1, x3 = (m >> 2) & 1,
                   x4 = (m >> 3) & 1;
        on[m] = (x1 && x3) ^ x1 ^ x2 ^ x4 ^ 1;
    }
    const auto cover = minimize_sop(on, 4);
    expect_exact_cover(cover, on, 4);
    EXPECT_EQ(cover.size(), 6u);
    const auto clauses = cover_to_clauses(cover, 4);
    EXPECT_EQ(clauses.size(), 6u);
}

TEST(QuineMccluskey, CoverToClausesSemantics) {
    // Forbid the single assignment x0=1, x1=0: clause (!x0 | x1).
    std::vector<Implicant> cover{{3u, 1u}};
    const auto clauses = cover_to_clauses(cover, 2);
    ASSERT_EQ(clauses.size(), 1u);
    ASSERT_EQ(clauses[0].literals.size(), 2u);
    // (var 0, negated=true), (var 1, negated=false)
    EXPECT_EQ(clauses[0].literals[0], (std::pair<unsigned, bool>{0, true}));
    EXPECT_EQ(clauses[0].literals[1], (std::pair<unsigned, bool>{1, false}));
}

class QmRandom : public ::testing::TestWithParam<int> {};

TEST_P(QmRandom, CoverIsExactAndPrimesAreImplicants) {
    Rng rng(GetParam());
    const unsigned k = 2 + rng.below(4);  // 2..5 variables
    std::vector<bool> on(1u << k);
    for (size_t i = 0; i < on.size(); ++i) on[i] = rng.coin();

    const auto primes = prime_implicants(on, k);
    // Every prime implicant covers only ON minterms.
    for (const auto& p : primes) {
        for (uint32_t m = 0; m < (1u << k); ++m) {
            if (p.covers(m)) EXPECT_TRUE(on[m]);
        }
    }
    const auto cover = minimize_sop(on, k);
    expect_exact_cover(cover, on, k);
    EXPECT_LE(cover.size(), primes.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, QmRandom, ::testing::Range(0, 25));

}  // namespace
}  // namespace bosphorus::minimize
