// The bosphorusd wire protocol (src/service/protocol.h), driven entirely
// in process: a ProtocolHandler over a live SolveService, fed request
// strings -- no sockets involved, so every verb and error path is
// deterministic and sanitizer-friendly.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <deque>
#include <string>
#include <vector>

#include "bosphorus/bosphorus.h"
#include "service/protocol.h"
#include "service/server.h"
#include "util/fault.h"

namespace bosphorus {
namespace {

using service::ProtocolAction;
using service::ProtocolHandler;

EngineConfig small_config() {
    EngineConfig cfg;
    cfg.xl.m_budget = 16;
    cfg.elimlin.m_budget = 16;
    cfg.sat_conflicts_start = 1000;
    cfg.max_iterations = 8;
    cfg.time_budget_s = 10.0;
    cfg.emit_processed = false;
    return cfg;
}

/// Drives a handler from a scripted payload queue.
struct Wire {
    explicit Wire(SolveService& svc) : handler(svc) {}

    /// Handle `request`; `payload` supplies the counted block lines.
    std::string request(const std::string& line,
                        std::vector<std::string> payload = {}) {
        std::deque<std::string> lines(payload.begin(), payload.end());
        std::string response;
        last_action = handler.handle(
            line,
            [&lines](std::string& out) {
                if (lines.empty()) return false;
                out = std::move(lines.front());
                lines.pop_front();
                return true;
            },
            response);
        return response;
    }

    ProtocolHandler handler;
    ProtocolAction last_action = ProtocolAction::kContinue;
};

/// The paper's running example: unique model x = 1,1,1,1,0.
const std::vector<std::string> kPaperAnf = {
    "x1*x2 + x3 + x4 + 1", "x1*x2*x3 + x1 + x3 + 1", "x1*x3 + x3*x4*x5 + x3",
    "x2*x3 + x3*x5 + 1",   "x2*x3 + x5 + 1",
};

ServiceConfig quick_service() {
    ServiceConfig cfg;
    cfg.engine = small_config();
    cfg.n_workers = 2;
    return cfg;
}

TEST(Protocol, HelloAndUnknownVerb) {
    SolveService svc(quick_service());
    Wire wire(svc);
    EXPECT_EQ(wire.request("HELLO"),
              std::string("OK bosphorusd ") + version() + "\n");
    EXPECT_EQ(wire.last_action, ProtocolAction::kContinue);
    const std::string err = wire.request("FROBNICATE x");
    EXPECT_EQ(err.rfind("ERR INVALID_ARGUMENT", 0), 0u) << err;
    EXPECT_EQ(wire.request(""), "ERR INVALID_ARGUMENT empty request\n");
}

TEST(Protocol, SubmitResultRoundTrip) {
    SolveService svc(quick_service());
    Wire wire(svc);
    const std::string submitted =
        wire.request("SUBMIT me anf 5 - 5", kPaperAnf);
    ASSERT_EQ(submitted.rfind("OK JOB ", 0), 0u) << submitted;
    const std::string id = submitted.substr(7, submitted.size() - 8);

    const std::string result = wire.request("RESULT " + id);
    // OK RESULT <id> done sat <queued> <run> 11110
    ASSERT_EQ(result.rfind("OK RESULT " + id + " done sat ", 0), 0u) << result;
    EXPECT_NE(result.find(" 11110\n"), std::string::npos) << result;

    const std::string status = wire.request("STATUS " + id);
    EXPECT_EQ(status, "OK STATUS " + id + " done\n");
}

TEST(Protocol, SubmitErrors) {
    SolveService svc(quick_service());
    Wire wire(svc);
    // Malformed usage.
    EXPECT_EQ(wire.request("SUBMIT me anf").rfind("ERR INVALID_ARGUMENT", 0),
              0u);
    // Bad kind.
    EXPECT_NE(wire.request("SUBMIT me tnf 5 - 1", {"x1"})
                  .find("kind must be anf or cnf"),
              std::string::npos);
    // Truncated payload (reader runs dry).
    EXPECT_NE(wire.request("SUBMIT me anf 5 - 3", {"x1 + 1"})
                  .find("payload truncated"),
              std::string::npos);
    // Parse error in the payload.
    EXPECT_EQ(wire.request("SUBMIT me anf 5 - 1", {"not anf"})
                  .rfind("ERR PARSE_ERROR", 0),
              0u);
    // Unknown solver spec fails the submit.
    EXPECT_EQ(wire.request("SUBMIT me anf 5 nope 5", kPaperAnf)
                  .rfind("ERR INVALID_ARGUMENT", 0),
              0u);
    // Unknown job ids.
    EXPECT_EQ(wire.request("RESULT 424242").rfind("ERR INVALID_ARGUMENT", 0),
              0u);
    EXPECT_EQ(wire.request("STATUS 424242").rfind("ERR INVALID_ARGUMENT", 0),
              0u);
    EXPECT_EQ(wire.request("CANCEL 424242").rfind("ERR INVALID_ARGUMENT", 0),
              0u);
}

TEST(Protocol, SessionSweepOverTheWire) {
    SolveService svc(quick_service());
    Wire wire(svc);
    ASSERT_EQ(wire.request("SESSION OPEN me sweep anf 5", kPaperAnf), "OK\n");
    // Duplicate open is a structured error.
    EXPECT_EQ(wire.request("SESSION OPEN me sweep anf 5", kPaperAnf)
                  .rfind("ERR INVALID_ARGUMENT", 0),
              0u);

    // x5 = 0 (literal -5) is the planted polarity; x5 = 1 contradicts.
    const std::string sat_submit = wire.request("ASSUME me sweep 5 -5");
    ASSERT_EQ(sat_submit.rfind("OK JOB ", 0), 0u) << sat_submit;
    const std::string sat_id = sat_submit.substr(7, sat_submit.size() - 8);
    const std::string unsat_submit = wire.request("ASSUME me sweep 5 5");
    ASSERT_EQ(unsat_submit.rfind("OK JOB ", 0), 0u) << unsat_submit;
    const std::string unsat_id =
        unsat_submit.substr(7, unsat_submit.size() - 8);

    EXPECT_NE(wire.request("RESULT " + sat_id).find(" done sat "),
              std::string::npos);
    EXPECT_NE(wire.request("RESULT " + unsat_id).find(" done unsat "),
              std::string::npos);

    // Bad literals and unknown sessions are structured errors.
    EXPECT_NE(wire.request("ASSUME me sweep 5 zero").find("bad assumption"),
              std::string::npos);
    EXPECT_NE(wire.request("ASSUME me sweep 5 0").find("bad assumption"),
              std::string::npos);
    EXPECT_EQ(wire.request("ASSUME me nope 5 1").rfind("ERR INVALID_ARGUMENT", 0),
              0u);
    EXPECT_EQ(wire.request("SESSION CLOSE me sweep"), "OK\n");
    EXPECT_EQ(wire.request("SESSION CLOSE me sweep")
                  .rfind("ERR INVALID_ARGUMENT", 0),
              0u);
}

TEST(Protocol, ForcedClientOverridesRequestToken) {
    SolveService svc(quick_service());
    // Tenant A opens a session under its connection identity.
    Wire tenant_a(svc);
    tenant_a.handler.set_forced_client("conn-a");
    ASSERT_EQ(tenant_a.request("SESSION OPEN whatever s anf 5", kPaperAnf),
              "OK\n");
    // Tenant B cannot reach it, even by naming A's tokens explicitly.
    Wire tenant_b(svc);
    tenant_b.handler.set_forced_client("conn-b");
    EXPECT_EQ(tenant_b.request("ASSUME whatever s 5 -5")
                  .rfind("ERR INVALID_ARGUMENT", 0),
              0u);
    EXPECT_EQ(tenant_b.request("ASSUME conn-a s 5 -5")
                  .rfind("ERR INVALID_ARGUMENT", 0),
              0u);
    // A itself is unaffected by the token it sends.
    EXPECT_EQ(tenant_a.request("ASSUME ignored s 5 -5").rfind("OK JOB ", 0),
              0u);
}

TEST(Protocol, MetricsBlockIsCountPrefixed) {
    SolveService svc(quick_service());
    Wire wire(svc);
    const std::string sub = wire.request("SUBMIT me anf 5 - 5", kPaperAnf);
    ASSERT_EQ(sub.rfind("OK JOB ", 0), 0u);
    wire.request("RESULT " + sub.substr(7, sub.size() - 8));

    const std::string block = wire.request("METRICS");
    ASSERT_EQ(block.rfind("OK METRICS ", 0), 0u) << block;
    const size_t header_end = block.find('\n');
    const int n = std::stoi(block.substr(11, header_end - 11));
    // Exactly n key-value lines follow the header.
    int lines = 0;
    for (size_t pos = header_end + 1; pos < block.size();) {
        const size_t nl = block.find('\n', pos);
        EXPECT_NE(nl, std::string::npos);
        const std::string line = block.substr(pos, nl - pos);
        EXPECT_NE(line.find(' '), std::string::npos) << line;
        ++lines;
        pos = nl + 1;
    }
    EXPECT_EQ(lines, n);
    EXPECT_NE(block.find("jobs_accepted 1\n"), std::string::npos) << block;
    EXPECT_NE(block.find("jobs_completed 1\n"), std::string::npos);
    EXPECT_NE(block.find("backend.native.sat 1\n"), std::string::npos);
    EXPECT_NE(block.find("store_entries "), std::string::npos);
}

TEST(Protocol, QuitAndShutdownActions) {
    SolveService svc(quick_service());
    Wire wire(svc);
    EXPECT_EQ(wire.request("QUIT"), "OK\n");
    EXPECT_EQ(wire.last_action, ProtocolAction::kQuit);
    EXPECT_EQ(wire.request("SHUTDOWN"), "OK\n");
    EXPECT_EQ(wire.last_action, ProtocolAction::kShutdown);
}

TEST(Protocol, RejectionIsStructuredOverTheWire) {
    // A zero-capacity queue cannot admit anything: the wire answer is a
    // parseable ERR UNAVAILABLE, not a closed connection.
    ServiceConfig cfg = quick_service();
    cfg.max_queued_jobs = 0;
    SolveService svc(cfg);
    Wire wire(svc);
    const std::string resp = wire.request("SUBMIT me anf 5 - 5", kPaperAnf);
    EXPECT_EQ(resp.rfind("ERR UNAVAILABLE", 0), 0u) << resp;
    EXPECT_NE(resp.find("queue full"), std::string::npos);
    // Backpressure rejections always carry a machine-readable retry hint.
    EXPECT_NE(resp.find("retry_after_ms="), std::string::npos) << resp;
}

TEST(Protocol, InflightQuotaIsEnforcedPerClient) {
    // The queue-delay fault parks the first job in the worker for 25 ms,
    // long enough that the same client's second submit deterministically
    // finds it still in flight.
    ServiceConfig cfg = quick_service();
    cfg.max_inflight_per_client = 1;
    cfg.fault_plan = "queue-delay=1,seed=7";
    struct Disarm {
        ~Disarm() { (void)fault::FaultInjector::global().arm(""); }
    } disarm;

    SolveService svc(cfg);
    Wire wire(svc);
    const std::string first = wire.request("SUBMIT me anf 5 - 5", kPaperAnf);
    ASSERT_EQ(first.rfind("OK JOB ", 0), 0u) << first;

    const std::string over = wire.request("SUBMIT me anf 5 - 5", kPaperAnf);
    EXPECT_EQ(over.rfind("ERR UNAVAILABLE", 0), 0u) << over;
    EXPECT_NE(over.find("quota"), std::string::npos) << over;
    EXPECT_NE(over.find("retry_after_ms="), std::string::npos) << over;

    // The quota is per client: a different client is still admitted.
    const std::string other = wire.request("SUBMIT you anf 5 - 5", kPaperAnf);
    EXPECT_EQ(other.rfind("OK JOB ", 0), 0u) << other;

    // Completion releases the quota slot for the original client.
    wire.request("RESULT " + first.substr(7, first.size() - 8));
    const std::string again = wire.request("SUBMIT me anf 5 - 5", kPaperAnf);
    EXPECT_EQ(again.rfind("OK JOB ", 0), 0u) << again;
}

TEST(Protocol, MetricsExposeResilienceAndFaultState) {
    SolveService svc(quick_service());
    Wire wire(svc);
    const std::string sub = wire.request("SUBMIT me anf 5 - 5", kPaperAnf);
    ASSERT_EQ(sub.rfind("OK JOB ", 0), 0u);
    wire.request("RESULT " + sub.substr(7, sub.size() - 8));

    const std::string block = wire.request("METRICS");
    for (const char* key :
         {"\njobs_deadline_rejected ", "\nclient_disconnects ",
          "\nrun_ewma_s ", "\nfault_plan ", "\nfaults_injected ",
          "\nresilience.attempts ", "\nresilience.retries ",
          "\nresilience.fallbacks ", "\nresilience.garbage_rejected ",
          "\nresilience.exhausted ", "\ncircuit_opens "}) {
        EXPECT_NE(block.find(key), std::string::npos) << key << "\n" << block;
    }
    // No plan armed here: the placeholder keeps the line two-token.
    EXPECT_NE(block.find("\nfault_plan -\n"), std::string::npos) << block;
}

TEST(Protocol, ClientDisconnectMidResultIsSurvivedAndCounted) {
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    EXPECT_TRUE(service::write_all_nosignal(sv[0], "RESULT head\n"));
    ::close(sv[1]);
    // Writing the rest of the RESULT into the dead peer must fail with a
    // plain error, not kill the process with SIGPIPE.
    bool ok = true;
    for (int i = 0; i < 64 && ok; ++i) {
        ok = service::write_all_nosignal(sv[0], std::string(1 << 16, 'x'));
    }
    EXPECT_FALSE(ok);
    EXPECT_TRUE(errno == EPIPE || errno == ECONNRESET) << errno;
    ::close(sv[0]);

    // The connection front end reports the drop; METRICS surfaces it.
    SolveService svc(quick_service());
    svc.note_client_disconnect();
    Wire wire(svc);
    const std::string block = wire.request("METRICS");
    EXPECT_NE(block.find("\nclient_disconnects 1\n"), std::string::npos)
        << block;
}

}  // namespace
}  // namespace bosphorus
