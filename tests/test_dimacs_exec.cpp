// End-to-end tests of the "dimacs-exec" external-process backend.
//
// Two kinds of external solver are exercised:
//
//  * THIS BINARY, re-executed with --dimacs-solver: a real, conformant
//    DIMACS solver (a sat::Solver behind SAT-competition output), used
//    for randomised verdict equivalence through the subprocess path.
//    The custom main() below dispatches the mode before gtest starts.
//
//  * Scripted fakes written to a temp dir (`sh` scripts emitting fixed
//    "s ..."/"v ..." lines, sleeping, or printing garbage), used for the
//    output-parsing, model-verification, timeout/kill and interrupt
//    paths. CI additionally runs a scripted fake against the CLI's
//    --solver-cmd (see .github/workflows/ci.yml).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>

#include "bosphorus/bosphorus.h"
#include "cnfgen/generators.h"
#include "sat/dimacs.h"
#include "test_util.h"
#include "util/fault.h"
#include "util/rng.h"

#if defined(__unix__) || defined(__APPLE__)
#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>
#define BOSPHORUS_EXEC_TESTS 1
#endif

#ifdef BOSPHORUS_EXEC_TESTS

namespace bosphorus::sat {
namespace {

using testutil::cnf_models;

/// Path of the running test binary (argv[0], resolved by main below).
std::string g_self;

std::string self_solver_command() { return g_self + " --dimacs-solver"; }

/// Write an executable shell script and return its path.
std::string write_script(const std::string& name, const std::string& body) {
    const std::string dir = ::testing::TempDir();
    const std::string path = dir + "/" + name;
    {
        std::ofstream out(path);
        out << "#!/bin/sh\n" << body;
    }
    ::chmod(path.c_str(), 0755);
    return path;
}

Result solve_via(const std::string& command, const Cnf& cnf,
                 double timeout_s = 30.0,
                 std::vector<LBool>* model = nullptr) {
    auto backend = BackendRegistry::global().create(
        SolverSpec{"dimacs-exec:" + command});
    EXPECT_TRUE(backend.ok());
    if (!backend.ok()) return Result::kUnknown;
    SolverBackend& b = **backend;
    if (!b.load(cnf)) return Result::kUnsat;
    const Result r = b.solve(-1, timeout_s);
    if (model && r == Result::kSat) {
        model->assign(cnf.num_vars, LBool::kFalse);
        for (Var v = 0; v < cnf.num_vars; ++v) (*model)[v] = b.value(v);
    }
    return r;
}

TEST(DimacsExec, EmptyCommandIsRejected) {
    const auto r =
        BackendRegistry::global().create(SolverSpec{"dimacs-exec"});
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), ::bosphorus::StatusCode::kInvalidArgument);
}

TEST(DimacsExec, ScriptedSatVerdictWithVerifiedModel) {
    // (x1) & (x2 | x3): the fake's fixed model 1 2 -3 satisfies it.
    Cnf cnf;
    cnf.num_vars = 3;
    cnf.add_clause({mk_lit(0, false)});
    cnf.add_clause({mk_lit(1, false), mk_lit(2, false)});
    const std::string script = write_script(
        "fake_sat.sh", "echo 'c fake'\necho 's SATISFIABLE'\necho 'v 1 2 -3 0'\n");
    std::vector<LBool> model;
    EXPECT_EQ(solve_via(script, cnf, 30.0, &model), Result::kSat);
    ASSERT_EQ(model.size(), 3u);
    EXPECT_EQ(model[0], LBool::kTrue);
    EXPECT_EQ(model[1], LBool::kTrue);
    EXPECT_EQ(model[2], LBool::kFalse);
}

TEST(DimacsExec, NonconformantModelIsNoVerdict) {
    // The fake claims SAT with a model violating the only clause.
    Cnf cnf;
    cnf.num_vars = 1;
    cnf.add_clause({mk_lit(0, false)});
    const std::string script = write_script(
        "fake_lying.sh", "echo 's SATISFIABLE'\necho 'v -1 0'\n");
    EXPECT_EQ(solve_via(script, cnf), Result::kUnknown);
}

TEST(DimacsExec, ScriptedUnsatVerdict) {
    Cnf cnf;
    cnf.num_vars = 1;
    cnf.add_clause({mk_lit(0, false)});
    const std::string script =
        write_script("fake_unsat.sh", "echo 's UNSATISFIABLE'\n");
    EXPECT_EQ(solve_via(script, cnf), Result::kUnsat);
}

TEST(DimacsExec, GarbageOutputYieldsUnknown) {
    Cnf cnf;
    cnf.num_vars = 1;
    cnf.add_clause({mk_lit(0, false)});
    const std::string garbage =
        write_script("fake_garbage.sh", "echo 'hello world'\n");
    EXPECT_EQ(solve_via(garbage, cnf), Result::kUnknown);
}

TEST(DimacsExec, MissingBinaryFailsAtCreation) {
    // A typo'd solver command must fail fast with a Status, not one
    // silent kUnknown per solve.
    for (const char* cmd :
         {"/no/such/solver/binary", "no-such-solver-on-path -q"}) {
        const auto r = BackendRegistry::global().create(
            SolverSpec{std::string("dimacs-exec:") + cmd});
        ASSERT_FALSE(r.ok()) << cmd;
        EXPECT_EQ(r.status().code(),
                  ::bosphorus::StatusCode::kInvalidArgument)
            << cmd;
    }
}

TEST(DimacsExec, TimeoutKillsTheChild) {
    Cnf cnf;
    cnf.num_vars = 1;
    cnf.add_clause({mk_lit(0, false)});
    const std::string sleeper = write_script(
        "fake_sleep.sh", "sleep 600\necho 's SATISFIABLE'\necho 'v 1 0'\n");
    const auto t0 = std::chrono::steady_clock::now();
    EXPECT_EQ(solve_via(sleeper, cnf, /*timeout_s=*/0.3), Result::kUnknown);
    const double waited =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    EXPECT_LT(waited, 30.0) << "the sleeping child must be killed, not waited";
}

TEST(DimacsExec, InterruptKillsTheChildFromAnotherThread) {
    Cnf cnf;
    cnf.num_vars = 1;
    cnf.add_clause({mk_lit(0, false)});
    const std::string sleeper =
        write_script("fake_sleep2.sh", "sleep 600\necho 's SATISFIABLE'\n");
    auto backend = BackendRegistry::global().create(
        SolverSpec{"dimacs-exec:" + sleeper});
    ASSERT_TRUE(backend.ok());
    SolverBackend& b = **backend;
    ASSERT_TRUE(b.load(cnf));

    std::thread stopper([&b] {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        b.interrupt();
    });
    const auto t0 = std::chrono::steady_clock::now();
    EXPECT_EQ(b.solve(-1, /*timeout_s=*/600.0), Result::kUnknown);
    const double waited =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    stopper.join();
    EXPECT_LT(waited, 30.0) << "interrupt must kill the child promptly";
    // Sticky, then recoverable.
    EXPECT_EQ(b.solve(-1, 1.0), Result::kUnknown);
    b.clear_interrupt();
}

/// Count children of this process currently in zombie (Z) state by
/// scanning /proc. Returns 0 on platforms without /proc.
int zombie_children() {
    int zombies = 0;
#ifdef __linux__
    DIR* proc = ::opendir("/proc");
    if (!proc) return 0;
    const pid_t self = ::getpid();
    while (dirent* e = ::readdir(proc)) {
        char* end = nullptr;
        const long pid = std::strtol(e->d_name, &end, 10);
        if (end == e->d_name || *end != '\0') continue;
        std::ifstream stat("/proc/" + std::string(e->d_name) + "/stat");
        std::string line;
        if (!std::getline(stat, line)) continue;
        // Fields after the parenthesised comm: "... ) <state> <ppid> ..."
        const size_t close = line.rfind(')');
        if (close == std::string::npos || close + 2 >= line.size()) continue;
        const char state = line[close + 2];
        long ppid = 0;
        std::sscanf(line.c_str() + close + 3, " %ld", &ppid);
        if (state == 'Z' && static_cast<pid_t>(ppid) == self) ++zombies;
    }
    ::closedir(proc);
#endif
    return zombies;
}

/// Count live processes whose cmdline mentions `needle` (catching
/// orphans reparented to init, which zombie_children() cannot see).
int processes_running(const std::string& needle) {
    int running = 0;
#ifdef __linux__
    DIR* proc = ::opendir("/proc");
    if (!proc) return 0;
    while (dirent* e = ::readdir(proc)) {
        char* end = nullptr;
        const long pid = std::strtol(e->d_name, &end, 10);
        if (end == e->d_name || *end != '\0') continue;
        std::ifstream cmd("/proc/" + std::string(e->d_name) + "/cmdline");
        std::string line((std::istreambuf_iterator<char>(cmd)),
                         std::istreambuf_iterator<char>());
        if (line.find(needle) != std::string::npos) ++running;
    }
    ::closedir(proc);
#endif
    return running;
}

TEST(DimacsExec, SigtermResistantChildIsKilledWithoutZombies) {
    // The script traps SIGTERM, so only the escalation to SIGKILL (after
    // the bounded grace period) can end it -- and the SIGKILL must reach
    // the whole process group: /bin/sh dying on the initial SIGTERM must
    // not leave the trap-armored script running as an orphan. Afterwards
    // the child must be reaped, never abandoned as a zombie.
    Cnf cnf;
    cnf.num_vars = 1;
    cnf.add_clause({mk_lit(0, false)});
    const std::string stubborn = write_script(
        "fake_stubborn.sh", "trap '' TERM\nsleep 600\n");
    const auto t0 = std::chrono::steady_clock::now();
    EXPECT_EQ(solve_via(stubborn, cnf, /*timeout_s=*/0.3), Result::kUnknown);
    const double waited =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    EXPECT_LT(waited, 30.0) << "SIGKILL escalation must not hang";
    EXPECT_EQ(zombie_children(), 0)
        << "the killed child must be reaped, not abandoned as a zombie";
    // SIGKILL delivery to the group can take a beat; poll briefly.
    int survivors = -1;
    for (int i = 0; i < 250; ++i) {
        survivors = processes_running("fake_stubborn.sh");
        if (survivors == 0) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    EXPECT_EQ(survivors, 0)
        << "no process in the child's group may outlive the solve";
}

TEST(DimacsExec, InjectedCrashFaultYieldsUnknownWithoutRunningTheChild) {
    Cnf cnf;
    cnf.num_vars = 1;
    cnf.add_clause({mk_lit(0, false)});
    const std::string marker = ::testing::TempDir() + "/crash_marker";
    std::remove(marker.c_str());
    const std::string script = write_script(
        "fake_marker.sh",
        "touch " + marker + "\necho 's SATISFIABLE'\necho 'v 1 0'\n");

    fault::ScopedFaultPlan plan(
        "backend-crash=1@1,seed=" + std::to_string(testutil::test_seed()));
    ASSERT_TRUE(plan.status().ok());
    EXPECT_EQ(solve_via(script, cnf), Result::kUnknown)
        << "an injected crash is a failed attempt, reported as kUnknown";
    EXPECT_FALSE(std::ifstream(marker).good())
        << "the crash strikes before the child is spawned";

    // The cap is spent: the next solve runs the real command.
    EXPECT_EQ(solve_via(script, cnf), Result::kSat);
    std::remove(marker.c_str());
}

TEST(DimacsExec, InjectedHangFaultEndsAtTheDeadlineWithoutZombies) {
    Cnf cnf;
    cnf.num_vars = 1;
    cnf.add_clause({mk_lit(0, false)});
    const std::string honest = write_script(
        "fake_honest.sh", "echo 's SATISFIABLE'\necho 'v 1 0'\n");

    fault::ScopedFaultPlan plan(
        "backend-hang=1@1,seed=" + std::to_string(testutil::test_seed()));
    ASSERT_TRUE(plan.status().ok());
    const auto t0 = std::chrono::steady_clock::now();
    EXPECT_EQ(solve_via(honest, cnf, /*timeout_s=*/0.3), Result::kUnknown);
    const double waited =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    EXPECT_GE(waited, 0.25) << "the hang must last until the deadline";
    EXPECT_LT(waited, 30.0) << "and end at the deadline, not run away";
    EXPECT_EQ(zombie_children(), 0);
}

TEST(DimacsExec, InjectedGarbageFaultIsNoVerdict) {
    Cnf cnf;
    cnf.num_vars = 1;
    cnf.add_clause({mk_lit(0, false)});
    const std::string honest = write_script(
        "fake_honest2.sh", "echo 's SATISFIABLE'\necho 'v 1 0'\n");

    fault::ScopedFaultPlan plan(
        "backend-garbage=1@1,seed=" + std::to_string(testutil::test_seed()));
    ASSERT_TRUE(plan.status().ok());
    EXPECT_EQ(solve_via(honest, cnf), Result::kUnknown)
        << "garbled solver output must never become a verdict";
    EXPECT_EQ(solve_via(honest, cnf), Result::kSat)
        << "the cap is spent; honest output is believed again";
}

TEST(DimacsExec, ResilientChainSurvivesACrashingExternalPrimary) {
    // End-to-end: a dimacs-exec primary that dies instantly, decorated
    // by the resilient chain, must degrade to the in-process floor and
    // still produce the right verdict -- the ISSUE's headline scenario.
    Cnf cnf;
    cnf.num_vars = 2;
    cnf.add_clause({mk_lit(0, false)});
    cnf.add_clause({mk_lit(0, true), mk_lit(1, false)});
    const std::string crasher = write_script("fake_crash.sh", "exit 139\n");

    auto backend = BackendRegistry::global().create(SolverSpec{
        "resilient:dimacs-exec:" + crasher + ",retries=1,backoff=0.001"});
    ASSERT_TRUE(backend.ok()) << backend.status().to_string();
    SolverBackend& b = **backend;
    ASSERT_TRUE(b.load(cnf));
    EXPECT_EQ(b.solve(-1, 30.0), Result::kSat);
    EXPECT_EQ(b.value(0), LBool::kTrue);
    EXPECT_EQ(b.value(1), LBool::kTrue);
    BackendRegistry::global().health().reset();
}

// ---- the real thing: this binary as the external solver --------------------

class DimacsExecRandom : public ::testing::TestWithParam<int> {};

TEST_P(DimacsExecRandom, SubprocessVerdictsMatchBruteForce) {
    Rng rng(GetParam() + 500);
    const size_t nv = 4 + rng.below(6);
    const Cnf cnf = cnfgen::random_ksat(nv, nv * 4 + rng.below(nv), 3, rng);
    const bool expect_sat = !cnf_models(cnf).empty();

    std::vector<LBool> model;
    const Result r = solve_via(self_solver_command(), cnf, 60.0, &model);
    EXPECT_EQ(r, expect_sat ? Result::kSat : Result::kUnsat);
    if (r == Result::kSat) EXPECT_TRUE(model_satisfies(cnf, model));
}

TEST_P(DimacsExecRandom, XorInstancesThroughTheSubprocess) {
    Rng rng(GetParam() + 900);
    const size_t len = 6 + rng.below(8);
    const bool satisfiable = rng.coin();
    const Cnf cnf = cnfgen::xor_cycle(len, satisfiable, rng);
    // XORs are expanded to plain clauses in the written DIMACS.
    EXPECT_EQ(solve_via(self_solver_command(), cnf, 60.0),
              satisfiable ? Result::kSat : Result::kUnsat);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DimacsExecRandom, ::testing::Range(0, 10));

TEST(DimacsExec, AssumptionsDegradeToColdSolvesWithCorrectVerdicts) {
    // x1 ^ x2 (as clauses): assuming both true must be UNSAT, and the
    // failed call must not poison the next one.
    Cnf cnf;
    cnf.num_vars = 2;
    cnf.add_clause({mk_lit(0, false), mk_lit(1, false)});
    cnf.add_clause({mk_lit(0, true), mk_lit(1, true)});

    auto backend = BackendRegistry::global().create(
        SolverSpec{"dimacs-exec:" + self_solver_command()});
    ASSERT_TRUE(backend.ok());
    SolverBackend& b = **backend;
    EXPECT_FALSE(b.supports_assumptions()) << "degraded by design";
    ASSERT_TRUE(b.load(cnf));

    b.assume(mk_lit(0, false));
    b.assume(mk_lit(1, false));
    EXPECT_EQ(b.solve(-1, 60.0), Result::kUnsat);
    EXPECT_TRUE(b.okay()) << "UNSAT under assumptions is not outright UNSAT";
    EXPECT_TRUE(b.failed(mk_lit(0, false)))
        << "degraded backends blame every assumption";

    b.assume(mk_lit(0, false));
    EXPECT_EQ(b.solve(-1, 60.0), Result::kSat);
    EXPECT_EQ(b.value(0), LBool::kTrue);
    EXPECT_EQ(b.value(1), LBool::kFalse);
    EXPECT_EQ(b.solve(-1, 60.0), Result::kSat) << "assumptions were cleared";
}

/// The whole stack at once: bosphorus::solve() with the external solver
/// as its Table II back end.
TEST(DimacsExec, FacadeSolvesThroughTheExternalBackend) {
    Rng rng(123);
    const Cnf cnf = cnfgen::random_ksat(8, 30, 3, rng);
    const bool expect_sat = !cnf_models(cnf).empty();

    SolveConfig cfg;
    cfg.solver = "dimacs-exec:" + self_solver_command();
    const auto out = solve(Problem::from_cnf(cnf), cfg);
    ASSERT_TRUE(out.ok()) << out.status().to_string();
    EXPECT_EQ(out->result,
              expect_sat ? sat::Result::kSat : sat::Result::kUnsat);
    if (out->result == sat::Result::kSat) EXPECT_TRUE(out->model_verified);
}

/// The in-loop SAT technique driving an external process per step.
TEST(DimacsExec, EngineLoopRunsOverTheExternalBackend) {
    Rng rng(321);
    const Cnf cnf = cnfgen::random_ksat(7, 26, 3, rng);
    const bool expect_sat = !cnf_models(cnf).empty();

    EngineConfig cfg;
    cfg.use_xl = false;
    cfg.use_elimlin = false;  // the external step must decide on its own
    cfg.sat_backend = "dimacs-exec:" + self_solver_command();
    Engine engine(cfg);
    const auto rep = engine.run(Problem::from_cnf(cnf));
    ASSERT_TRUE(rep.ok()) << rep.status().to_string();
    EXPECT_EQ(rep->verdict,
              expect_sat ? sat::Result::kSat : sat::Result::kUnsat);
}

}  // namespace
}  // namespace bosphorus::sat

/// Solver mode: read the DIMACS file named by argv[2], solve it with the
/// in-tree CDCL solver, print SAT-competition-conformant output, exit
/// 10/20/0. This is what "--dimacs-solver" subprocesses run.
static int run_as_dimacs_solver(const char* path) {
    using namespace bosphorus::sat;
    std::ifstream in(path);
    if (!in) {
        std::printf("c cannot open %s\n", path);
        return 1;
    }
    const auto cnf = try_read_dimacs(in);
    if (!cnf.ok()) {
        std::printf("c parse error\n");
        return 1;
    }
    Solver solver;
    if (!solver.load(*cnf)) {
        std::printf("s UNSATISFIABLE\n");
        return 20;
    }
    const Result r = solver.solve();
    if (r == Result::kUnsat) {
        std::printf("s UNSATISFIABLE\n");
        return 20;
    }
    if (r == Result::kSat) {
        std::printf("s SATISFIABLE\nv");
        for (Var v = 0; v < cnf->num_vars; ++v) {
            const bool val = solver.model()[v] == LBool::kTrue;
            std::printf(" %s%u", val ? "" : "-", v + 1);
        }
        std::printf(" 0\n");
        return 10;
    }
    std::printf("s UNKNOWN\n");
    return 0;
}

/// Custom main: dispatch the hidden solver mode before gtest parses
/// flags (defining main here shadows gtest_main's; the linker only pulls
/// that object when main is otherwise undefined).
int main(int argc, char** argv) {
    if (argc >= 3 && std::string(argv[1]) == "--dimacs-solver")
        return run_as_dimacs_solver(argv[2]);
    bosphorus::sat::g_self = argv[0];
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}

#else  // !BOSPHORUS_EXEC_TESTS

TEST(DimacsExec, SkippedOnThisPlatform) { GTEST_SKIP(); }

#endif
