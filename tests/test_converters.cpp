// ANF <-> CNF conversion tests (paper sections III-C and III-D).
#include <gtest/gtest.h>

#include "anf/anf_parser.h"
#include "core/anf_to_cnf.h"
#include "core/cnf_to_anf.h"
#include "sat/solve_cnf.h"
#include "test_util.h"
#include "util/rng.h"

namespace bosphorus::core {
namespace {

using anf::parse_polynomial;
using anf::parse_system_from_string;
using anf::Polynomial;
using testutil::anf_models;
using testutil::cnf_models;
using testutil::project_models;

// ---- ANF -> CNF -----------------------------------------------------------

TEST(AnfToCnf, Fig2KarnaughPath) {
    // x1x3 + x1 + x2 + x4 + 1 with K >= 4: 6 clauses, no auxiliaries
    // (paper Fig. 2, left).
    const auto p = parse_polynomial("x1*x3 + x1 + x2 + x4 + 1");
    Anf2CnfConfig cfg;
    cfg.karnaugh_k = 8;
    const auto res = anf_to_cnf({p}, 4, cfg);
    EXPECT_EQ(res.cnf.clauses.size(), 6u);
    EXPECT_EQ(res.cnf.num_vars, 4u) << "no auxiliary variables";
    EXPECT_EQ(res.karnaugh_polys, 1u);
}

TEST(AnfToCnf, Fig2TseitinPath) {
    // The same polynomial with K = 2 forces the Tseitin path: one aux var
    // for x1x3 (3 clauses) plus an 4-literal XOR (8 clauses) = 11 clauses
    // (paper Fig. 2, right).
    const auto p = parse_polynomial("x1*x3 + x1 + x2 + x4 + 1");
    Anf2CnfConfig cfg;
    cfg.karnaugh_k = 2;
    const auto res = anf_to_cnf({p}, 4, cfg);
    EXPECT_EQ(res.cnf.clauses.size(), 11u);
    EXPECT_EQ(res.cnf.num_vars, 5u) << "exactly one auxiliary monomial var";
    EXPECT_EQ(res.tseitin_polys, 1u);
    // The bidirectional map must know the monomial.
    const anf::Monomial m(std::vector<anf::Var>{0, 2});
    ASSERT_TRUE(res.var_of_mono.count(m));
    EXPECT_EQ(res.var_of_mono.at(m), 4u);
    EXPECT_EQ(res.mono_of_var.at(0), m);
}

TEST(AnfToCnf, BothPathsSameSolutions) {
    const auto p = parse_polynomial("x1*x3 + x1 + x2 + x4 + 1");
    Anf2CnfConfig karnaugh, tseitin;
    karnaugh.karnaugh_k = 8;
    tseitin.karnaugh_k = 2;
    const auto rk = anf_to_cnf({p}, 4, karnaugh);
    const auto rt = anf_to_cnf({p}, 4, tseitin);
    EXPECT_EQ(project_models(cnf_models(rk.cnf), 4),
              project_models(cnf_models(rt.cnf), 4));
}

TEST(AnfToCnf, ConstantOnePolynomialIsUnsat) {
    const auto res = anf_to_cnf({Polynomial::constant(true)}, 2);
    bool has_empty = false;
    for (const auto& c : res.cnf.clauses) has_empty |= c.empty();
    EXPECT_TRUE(has_empty);
}

TEST(AnfToCnf, UnitAndEquivalencePolynomials) {
    // x1 + 1 = 0 -> unit clause; x2 + x3 + 1 = 0 -> two binaries.
    const auto sys = parse_system_from_string("x1 + 1\nx2 + x3 + 1\n");
    const auto res = anf_to_cnf(sys.polynomials, 3);
    ASSERT_EQ(res.cnf.clauses.size(), 3u);
    EXPECT_EQ(res.cnf.clauses[0].size(), 1u);
}

TEST(AnfToCnf, LongXorIsCut) {
    // 8 linear terms with L = 5 requires chaining auxiliaries.
    const auto p = parse_polynomial(
        "x1 + x2 + x3 + x4 + x5 + x6 + x7 + x8 + 1");
    Anf2CnfConfig cfg;
    cfg.karnaugh_k = 3;  // force the XOR path
    cfg.xor_cut = 5;
    const auto res = anf_to_cnf({p}, 8, cfg);
    EXPECT_GT(res.cnf.num_vars, 8u) << "cutting introduced auxiliaries";
    EXPECT_GE(res.cut_chunks, 2u);
    // Semantics: projected models must equal the polynomial's models.
    EXPECT_EQ(project_models(cnf_models(res.cnf), 8),
              anf_models({p}, 8));
}

TEST(AnfToCnf, NativeXorOutput) {
    const auto p = parse_polynomial("x1 + x2 + x3 + x4 + 1");
    Anf2CnfConfig cfg;
    cfg.karnaugh_k = 2;
    cfg.native_xor = true;
    const auto res = anf_to_cnf({p}, 4, cfg);
    EXPECT_EQ(res.cnf.xors.size(), 1u);
    EXPECT_EQ(project_models(cnf_models(res.cnf), 4), anf_models({p}, 4));
}

TEST(AnfToCnf, SharedMonomialAuxReused) {
    // x1x2 appears in two polynomials: only one auxiliary variable.
    const auto sys = parse_system_from_string(
        "x1*x2 + x3 + x4 + 1\nx1*x2 + x5 + x6\n");
    Anf2CnfConfig cfg;
    cfg.karnaugh_k = 2;
    const auto res = anf_to_cnf(sys.polynomials, 6, cfg);
    EXPECT_EQ(res.cnf.num_vars, 7u) << "one shared aux for x1*x2";
}

class AnfToCnfRandom : public ::testing::TestWithParam<int> {};

TEST_P(AnfToCnfRandom, ConversionPreservesSolutions) {
    Rng rng(GetParam());
    const unsigned nv = 4 + rng.below(3);
    std::vector<Polynomial> polys;
    const size_t np = 2 + rng.below(4);
    for (size_t i = 0; i < np; ++i) {
        std::vector<anf::Monomial> monos;
        const size_t nm = 1 + rng.below(5);
        for (size_t j = 0; j < nm; ++j) {
            std::vector<anf::Var> vars;
            const size_t d = rng.below(4);
            for (size_t l = 0; l < d; ++l)
                vars.push_back(static_cast<anf::Var>(rng.below(nv)));
            monos.emplace_back(std::move(vars));
        }
        polys.emplace_back(std::move(monos));
    }
    // Sweep conversion configurations.
    for (const unsigned k : {1u, 3u, 8u}) {
        for (const unsigned cut : {3u, 5u}) {
            Anf2CnfConfig cfg;
            cfg.karnaugh_k = k;
            cfg.xor_cut = cut;
            const auto res = anf_to_cnf(polys, nv, cfg);
            if (res.cnf.num_vars > 22) continue;  // keep brute force cheap
            EXPECT_EQ(project_models(cnf_models(res.cnf), nv),
                      anf_models(polys, nv))
                << "K=" << k << " L=" << cut;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnfToCnfRandom, ::testing::Range(0, 20));

// ---- CNF -> ANF -----------------------------------------------------------

TEST(CnfToAnf, PaperClauseExample) {
    // Clause !x1 | x2 becomes x1(x2 + 1) = x1x2 + x1 (paper section III-D).
    sat::Cnf cnf;
    cnf.num_vars = 2;
    cnf.add_clause({sat::mk_lit(0, true), sat::mk_lit(1, false)});
    const auto res = cnf_to_anf(cnf);
    ASSERT_EQ(res.polys.size(), 1u);
    EXPECT_EQ(res.polys[0], parse_polynomial("x1*x2 + x1"));
}

TEST(CnfToAnf, AllNegativeClauseIsSingleMonomial) {
    sat::Cnf cnf;
    cnf.num_vars = 3;
    cnf.add_clause(
        {sat::mk_lit(0, true), sat::mk_lit(1, true), sat::mk_lit(2, true)});
    const auto res = cnf_to_anf(cnf);
    ASSERT_EQ(res.polys.size(), 1u);
    EXPECT_EQ(res.polys[0], parse_polynomial("x1*x2*x3"));
}

TEST(CnfToAnf, PositiveLiteralsExpand) {
    // n positive literals -> 2^n monomials (no cutting needed below L').
    sat::Cnf cnf;
    cnf.num_vars = 3;
    cnf.add_clause(
        {sat::mk_lit(0, false), sat::mk_lit(1, false), sat::mk_lit(2, false)});
    const auto res = cnf_to_anf(cnf, 5);
    ASSERT_EQ(res.polys.size(), 1u);
    EXPECT_EQ(res.polys[0].size(), 8u);
    EXPECT_EQ(res.cut_clauses, 0u);
}

TEST(CnfToAnf, ClauseCuttingLimitsPositives) {
    // 6 positive literals with L' = 3: must be split with auxiliaries.
    sat::Cnf cnf;
    cnf.num_vars = 6;
    std::vector<sat::Lit> clause;
    for (sat::Var v = 0; v < 6; ++v) clause.push_back(sat::mk_lit(v, false));
    cnf.add_clause(clause);
    const auto res = cnf_to_anf(cnf, 3);
    EXPECT_GE(res.cut_clauses, 1u);
    EXPECT_GT(res.num_vars, 6u);
    for (const auto& p : res.polys)
        EXPECT_LE(p.size(), 1u << 4) << "monomial blow-up not contained";
    // Semantics preserved on the original variables.
    EXPECT_EQ(project_models(anf_models(res.polys, res.num_vars), 6),
              cnf_models(cnf));
}

TEST(CnfToAnf, XorConstraintsBecomeLinear) {
    sat::Cnf cnf;
    cnf.num_vars = 3;
    cnf.xors.push_back({{0, 1, 2}, true});
    const auto res = cnf_to_anf(cnf);
    ASSERT_EQ(res.polys.size(), 1u);
    EXPECT_EQ(res.polys[0], parse_polynomial("x1 + x2 + x3 + 1"));
}

class CnfToAnfRandom : public ::testing::TestWithParam<int> {};

TEST_P(CnfToAnfRandom, ConversionPreservesSolutions) {
    Rng rng(GetParam() + 50);
    const size_t nv = 4 + rng.below(4);
    sat::Cnf cnf;
    cnf.num_vars = nv;
    const size_t nc = 3 + rng.below(8);
    for (size_t i = 0; i < nc; ++i) {
        std::vector<sat::Lit> clause;
        const size_t len = 1 + rng.below(4);
        for (size_t j = 0; j < len; ++j)
            clause.push_back(
                sat::mk_lit(static_cast<sat::Var>(rng.below(nv)), rng.coin()));
        cnf.add_clause(std::move(clause));
    }
    for (const unsigned cut : {2u, 3u, 5u}) {
        const auto res = cnf_to_anf(cnf, cut);
        if (res.num_vars > 20) continue;
        EXPECT_EQ(project_models(anf_models(res.polys, res.num_vars), nv),
                  project_models(cnf_models(cnf), nv))
            << "L'=" << cut;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CnfToAnfRandom, ::testing::Range(0, 20));

}  // namespace
}  // namespace bosphorus::core
