// Unit tests for the concurrency runtime: work-stealing ThreadPool,
// CancellationSource/Token, and the blocking ResultQueue. These are the
// suites the ThreadSanitizer CI job leans on hardest.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "runtime/cancellation.h"
#include "runtime/result_queue.h"
#include "runtime/thread_pool.h"

namespace bosphorus::runtime {
namespace {

// ---- ThreadPool ------------------------------------------------------------

TEST(ThreadPool, RunsEverySubmittedTask) {
    std::atomic<int> count{0};
    {
        ThreadPool pool(4);
        for (int i = 0; i < 200; ++i)
            pool.submit([&count] { count.fetch_add(1); });
        pool.wait_idle();
        EXPECT_EQ(count.load(), 200);
    }  // destructor drains + joins
    EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
    std::atomic<int> count{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 64; ++i)
            pool.submit([&count] { count.fetch_add(1); });
        // No wait_idle: teardown itself must finish the queue.
    }
    EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, AsyncReturnsValuesAndPropagatesExceptions) {
    ThreadPool pool(2);
    auto ok = pool.async([] { return 6 * 7; });
    auto boom = pool.async([]() -> int { throw std::runtime_error("boom"); });
    EXPECT_EQ(ok.get(), 42);
    EXPECT_THROW(boom.get(), std::runtime_error);
}

TEST(ThreadPool, TasksCanSubmitMoreTasks) {
    // Recursive fan-out: tasks submitted from worker threads land on the
    // submitting worker's own deque and get stolen by the others.
    std::atomic<int> count{0};
    ThreadPool pool(4);
    for (int i = 0; i < 8; ++i) {
        pool.submit([&pool, &count] {
            for (int j = 0; j < 8; ++j)
                pool.submit([&count] { count.fetch_add(1); });
        });
    }
    pool.wait_idle();
    EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, SingleThreadPoolStillCompletes) {
    std::atomic<int> count{0};
    ThreadPool pool(1);
    for (int i = 0; i < 16; ++i) pool.submit([&count] { count.fetch_add(1); });
    pool.wait_idle();
    EXPECT_EQ(count.load(), 16);
}

TEST(ThreadPool, DefaultThreadCountIsPositive) {
    EXPECT_GE(ThreadPool::default_thread_count(), 1u);
}

// ---- CancellationToken -----------------------------------------------------

TEST(Cancellation, DefaultTokenNeverCancels) {
    CancellationToken token;
    EXPECT_FALSE(token.can_cancel());
    EXPECT_FALSE(token.cancelled());
}

TEST(Cancellation, SourceFiresItsTokens) {
    CancellationSource source;
    CancellationToken token = source.token();
    EXPECT_TRUE(token.can_cancel());
    EXPECT_FALSE(token.cancelled());
    source.request_cancel();
    EXPECT_TRUE(token.cancelled());
    EXPECT_TRUE(source.cancel_requested());
}

TEST(Cancellation, TokenOutlivesSourceCopies) {
    CancellationToken token;
    {
        CancellationSource source;
        token = source.token();
        source.request_cancel();
    }  // source destroyed; the shared flag lives on
    EXPECT_TRUE(token.cancelled());
}

TEST(Cancellation, LinkedPredicateComposesWithFlag) {
    CancellationSource source;
    bool flag = false;
    CancellationToken token = CancellationToken::linked(
        source.token(), [&flag] { return flag; });
    EXPECT_FALSE(token.cancelled());
    flag = true;  // predicate path
    EXPECT_TRUE(token.cancelled());
    flag = false;
    source.request_cancel();  // flag path
    EXPECT_TRUE(token.cancelled());
}

TEST(Cancellation, LinkedChainsAnExistingPredicate) {
    // Folding a second predicate in (as Engine::run does with the user's
    // interrupt callback) must keep the first one polled too.
    bool a = false, b = false;
    CancellationToken token =
        CancellationToken::linked(CancellationToken{}, [&a] { return a; });
    token = CancellationToken::linked(token, [&b] { return b; });
    EXPECT_FALSE(token.cancelled());
    a = true;
    EXPECT_TRUE(token.cancelled());
    a = false;
    b = true;
    EXPECT_TRUE(token.cancelled());
}

TEST(Cancellation, LinkedWithNullPredicateIsBase) {
    CancellationSource source;
    CancellationToken token = CancellationToken::linked(source.token(), {});
    EXPECT_FALSE(token.cancelled());
    source.request_cancel();
    EXPECT_TRUE(token.cancelled());
}

TEST(Cancellation, VisibleAcrossThreads) {
    CancellationSource source;
    CancellationToken token = source.token();
    std::atomic<bool> worker_saw_cancel{false};
    std::thread worker([&] {
        while (!token.cancelled())
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        worker_saw_cancel.store(true);
    });
    source.request_cancel();
    worker.join();
    EXPECT_TRUE(worker_saw_cancel.load());
}

// ---- ResultQueue -----------------------------------------------------------

TEST(ResultQueue, FifoThroughOneProducer) {
    ResultQueue<int> q;
    q.push(1);
    q.push(2);
    q.push(3);
    EXPECT_EQ(q.size(), 3u);
    EXPECT_EQ(q.pop(), std::optional<int>(1));
    EXPECT_EQ(q.try_pop(), std::optional<int>(2));
    EXPECT_EQ(q.pop(), std::optional<int>(3));
    EXPECT_EQ(q.try_pop(), std::nullopt);
}

TEST(ResultQueue, CloseWakesBlockedConsumer) {
    ResultQueue<int> q;
    std::thread consumer([&q] { EXPECT_EQ(q.pop(), std::nullopt); });
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    q.close();
    consumer.join();
}

TEST(ResultQueue, DrainsRemainingItemsAfterClose) {
    ResultQueue<int> q;
    q.push(7);
    q.close();
    q.push(8);  // dropped: the queue is closed
    EXPECT_EQ(q.pop(), std::optional<int>(7));
    EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(ResultQueue, ManyProducersOneConsumer) {
    ResultQueue<int> q;
    constexpr int kProducers = 4;
    constexpr int kPerProducer = 50;
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&q, p] {
            for (int i = 0; i < kPerProducer; ++i) q.push(p * 1000 + i);
        });
    }
    int received = 0;
    long long sum = 0;
    while (received < kProducers * kPerProducer) {
        auto v = q.pop();
        ASSERT_TRUE(v.has_value());
        sum += *v;
        ++received;
    }
    for (auto& t : producers) t.join();
    long long expected = 0;
    for (int p = 0; p < kProducers; ++p)
        for (int i = 0; i < kPerProducer; ++i) expected += p * 1000 + i;
    EXPECT_EQ(sum, expected);
}

}  // namespace
}  // namespace bosphorus::runtime
