// Representation-equivalence suite: the interned-monomial algebra must be
// observably bit-identical to the pre-interning reference representation
// (anf/legacy_terms.h) -- same canonical deg-lex order, same strings, same
// facts -- and the surrounding machinery (linearise column order, the
// AnfSystem snapshot trail) must be independent of store history.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "anf/monomial_store.h"
#include "anf/polynomial.h"
#include "core/anf_system.h"
#include "core/linearize.h"
#include "test_util.h"
#include "util/rng.h"

#ifdef BOSPHORUS_LEGACY_TERMS
#include "anf/legacy_terms.h"
#endif

namespace bosphorus {
namespace {

using anf::Monomial;
using anf::Polynomial;
using anf::Var;

// Representation-neutral random polynomial description.
using PolyDesc = std::vector<std::vector<Var>>;

PolyDesc random_desc(Rng& rng, unsigned num_vars, unsigned max_monos,
                     unsigned max_deg) {
    PolyDesc desc;
    const size_t n = 1 + rng.below(max_monos);
    for (size_t i = 0; i < n; ++i) {
        std::vector<Var> vars;
        const size_t d = rng.below(max_deg + 1);
        for (size_t j = 0; j < d; ++j)
            vars.push_back(static_cast<Var>(rng.below(num_vars)));
        desc.push_back(std::move(vars));
    }
    return desc;
}

template <class Poly, class Mono>
Poly build(const PolyDesc& desc) {
    std::vector<Mono> monos;
    monos.reserve(desc.size());
    for (const auto& vs : desc) monos.push_back(Mono(vs));
    return Poly(std::move(monos));
}

#ifdef BOSPHORUS_LEGACY_TERMS

using LMono = anf::legacy::Monomial;
using LPoly = anf::legacy::Polynomial;

class ReprEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(ReprEquivalence, AlgebraMatchesReferenceBitForBit) {
    Rng rng(testutil::test_seed() * 1000003 + GetParam() * 977 + 5);
    const unsigned nv = 10;
    for (int round = 0; round < 20; ++round) {
        const PolyDesc da = random_desc(rng, nv, 8, 4);
        const PolyDesc db = random_desc(rng, nv, 6, 3);
        const Polynomial a = build<Polynomial, Monomial>(da);
        const Polynomial b = build<Polynomial, Monomial>(db);
        const LPoly la = build<LPoly, LMono>(da);
        const LPoly lb = build<LPoly, LMono>(db);

        // Construction canonicalises identically...
        ASSERT_EQ(a.to_string(), la.to_string());
        EXPECT_EQ(a.size(), la.size());
        EXPECT_EQ(a.degree(), la.degree());
        EXPECT_EQ(a.variables(), la.variables());
        EXPECT_EQ(a.has_constant_term(), la.has_constant_term());
        if (!a.is_zero()) {
            EXPECT_EQ(a.leading_monomial().degree(),
                      la.leading_monomial().degree());
        }

        // ...and so does every operation the pipeline uses.
        EXPECT_EQ((a + b).to_string(), (la + lb).to_string());
        EXPECT_EQ((a * b).to_string(), (la * lb).to_string());
        Polynomial acc = a;
        acc += b;  // the in-place merge against the reference operator+
        EXPECT_EQ(acc.to_string(), (la + lb).to_string());
        Polynomial self = a;
        self += a;
        EXPECT_TRUE(self.is_zero()) << "p += p must cancel to zero";

        const Var target = static_cast<Var>(rng.below(nv));
        EXPECT_EQ(a.substitute(target, b).to_string(),
                  la.substitute(target, lb).to_string());

        std::vector<bool> assignment(nv);
        for (unsigned v = 0; v < nv; ++v) assignment[v] = rng.coin();
        EXPECT_EQ(a.evaluate(assignment), la.evaluate(assignment));

        // Polynomial ordering (used for canonical system sorting).
        const Polynomial a2 = build<Polynomial, Monomial>(db);
        const LPoly la2 = build<LPoly, LMono>(db);
        EXPECT_EQ(a < a2, la < la2);
        EXPECT_EQ(a == a2, la == la2);
    }
}

TEST_P(ReprEquivalence, MonomialOrderAndHashMatchReference) {
    Rng rng(testutil::test_seed() * 1000003 + GetParam() * 31 + 2);
    for (int i = 0; i < 100; ++i) {
        const PolyDesc d = random_desc(rng, 12, 3, 5);
        const Monomial m(d[0]), n(d[1 % d.size()]);
        const LMono lm(d[0]), ln(d[1 % d.size()]);
        EXPECT_EQ(m.degree(), lm.degree());
        EXPECT_EQ(m.hash(), lm.hash())
            << "cached hash must equal the reference chain";
        EXPECT_EQ(m < n, lm < ln) << "deg-lex order must match the reference";
        EXPECT_EQ(m == n, lm == ln);
        EXPECT_EQ(m.divides(n), lm.divides(ln));
        EXPECT_EQ((m * n).vars() == (lm * ln).vars(), true);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReprEquivalence, ::testing::Range(0, 10));

#endif  // BOSPHORUS_LEGACY_TERMS

// ---- store-history independence of the lineariser ------------------------

TEST(Linearize, ColumnOrderIndependentOfStoreSize) {
    // linearize() picks between rank-table and direct compares based on
    // how big the column set is relative to the interned vocabulary. Both
    // branches must order columns identically: take a system, linearise
    // (small store -> rank path likely), then intern a pile of unrelated
    // vocabulary to flip the heuristic and linearise again.
    Rng rng(testutil::test_seed() * 1000003 + 123);
    std::vector<Polynomial> polys;
    for (int i = 0; i < 12; ++i)
        polys.push_back(build<Polynomial, Monomial>(random_desc(rng, 8, 6, 3)));
    polys.erase(std::remove_if(polys.begin(), polys.end(),
                               [](const Polynomial& p) { return p.is_zero(); }),
                polys.end());

    const core::Linearization before = core::linearize(polys);

    auto& store = anf::MonomialStore::global();
    const size_t cols = before.col_monomial.size();
    // Intern > 16x the column count of junk so cols*16 < store growth.
    for (size_t i = 0; store.size() < cols * 64 + 1000 && i < 100000; ++i)
        store.intern({static_cast<Var>(500000 + i),
                      static_cast<Var>(500001 + i)});

    const core::Linearization after = core::linearize(polys);
    ASSERT_EQ(before.col_monomial.size(), after.col_monomial.size());
    for (size_t c = 0; c < before.col_monomial.size(); ++c) {
        EXPECT_EQ(before.col_monomial[c], after.col_monomial[c])
            << "column order leaked store history at column " << c;
    }
    // Descending deg-lex, constant term last -- as documented.
    for (size_t c = 0; c + 1 < after.col_monomial.size(); ++c)
        EXPECT_TRUE(after.col_monomial[c + 1] < after.col_monomial[c]);
}

// ---- snapshot trail exactness on the interned representation -------------

std::vector<std::string> system_strings(const core::AnfSystem& sys) {
    std::vector<std::string> out;
    for (const auto& p : sys.to_polynomials()) out.push_back(p.to_string());
    std::sort(out.begin(), out.end());
    return out;
}

TEST(SnapshotTrail, RestoreIsExactAndStoreIsAppendOnly) {
    Rng rng(testutil::test_seed() * 1000003 + 321);
    for (int round = 0; round < 10; ++round) {
        std::vector<Polynomial> polys;
        for (int i = 0; i < 10; ++i)
            polys.push_back(
                build<Polynomial, Monomial>(random_desc(rng, 8, 5, 3)));
        core::AnfSystem sys(polys, 8);

        const auto before = system_strings(sys);
        const bool ok_before = sys.okay();
        const auto snap = sys.snapshot();
        const size_t store_before = anf::MonomialStore::global().size();

        // Mutate: add random facts (some may contradict -- that's the
        // interesting rewind case).
        for (int i = 0; i < 5; ++i)
            sys.add_fact(build<Polynomial, Monomial>(random_desc(rng, 8, 3, 2)));

        sys.restore(snap);
        EXPECT_EQ(system_strings(sys), before)
            << "pop must rewind the system bit-exactly";
        EXPECT_EQ(sys.okay(), ok_before);
        EXPECT_GE(anf::MonomialStore::global().size(), store_before)
            << "the store is append-only: rewinds never shrink it";
        sys.clear_trail();
    }
}

}  // namespace
}  // namespace bosphorus
