#include "anf/polynomial.h"

#include <gtest/gtest.h>

#include <sstream>

#include "anf/anf_parser.h"
#include "util/rng.h"

namespace bosphorus::anf {
namespace {

Polynomial P(const std::string& s) { return parse_polynomial(s); }

// ---- Monomial ------------------------------------------------------------

TEST(Monomial, ConstantIsOne) {
    Monomial one;
    EXPECT_TRUE(one.is_one());
    EXPECT_EQ(one.degree(), 0u);
}

TEST(Monomial, DedupOnConstruction) {
    Monomial m(std::vector<Var>{2, 0, 2, 1});  // x^2 = x
    EXPECT_EQ(m.degree(), 3u);
    EXPECT_EQ(m.vars(), (std::vector<Var>{0, 1, 2}));
}

TEST(Monomial, ProductIsUnion) {
    const Monomial a(std::vector<Var>{0, 2});
    const Monomial b(std::vector<Var>{1, 2});
    const Monomial ab = a * b;
    EXPECT_EQ(ab.vars(), (std::vector<Var>{0, 1, 2}));
    EXPECT_EQ((a * a), a) << "idempotent: m * m = m over GF(2)";
}

TEST(Monomial, Divides) {
    const Monomial a(std::vector<Var>{0, 2});
    const Monomial b(std::vector<Var>{0, 1, 2});
    EXPECT_TRUE(a.divides(b));
    EXPECT_FALSE(b.divides(a));
    EXPECT_TRUE(Monomial().divides(a)) << "1 divides everything";
}

TEST(Monomial, Without) {
    const Monomial m(std::vector<Var>{0, 1, 2});
    EXPECT_EQ(m.without(1).vars(), (std::vector<Var>{0, 2}));
}

TEST(Monomial, DegLexOrder) {
    const Monomial one;
    const Monomial x0(0), x1(1);
    const Monomial x01(std::vector<Var>{0, 1});
    EXPECT_LT(one, x0);
    EXPECT_LT(x0, x1);
    EXPECT_LT(x1, x01) << "degree dominates lex";
}

TEST(Monomial, Evaluate) {
    const Monomial m(std::vector<Var>{0, 2});
    EXPECT_TRUE(m.evaluate({true, false, true}));
    EXPECT_FALSE(m.evaluate({true, true, false}));
    EXPECT_TRUE(Monomial().evaluate({false}));
}

// ---- Polynomial ------------------------------------------------------------

TEST(Polynomial, ZeroAndOne) {
    EXPECT_TRUE(Polynomial().is_zero());
    EXPECT_TRUE(Polynomial::constant(true).is_one());
    EXPECT_TRUE(Polynomial::constant(false).is_zero());
    EXPECT_TRUE(Polynomial::constant(true).is_constant());
    EXPECT_FALSE(P("x1").is_constant());
}

TEST(Polynomial, AdditionCancels) {
    EXPECT_TRUE((P("x1 + x2") + P("x1 + x2")).is_zero());
    EXPECT_EQ(P("x1") + P("x2"), P("x1 + x2"));
    EXPECT_EQ(P("x1 + x2") + P("x2 + x3"), P("x1 + x3"));
}

TEST(Polynomial, ConstructorCancelsPairs) {
    const Monomial x0(0);
    Polynomial p({x0, x0, Monomial(1)});
    EXPECT_EQ(p, P("x2"));
    Polynomial q({x0, x0, x0});
    EXPECT_EQ(q, P("x1"));
}

TEST(Polynomial, MultiplicationDistributes) {
    // (x1 + x2) * (x1 + x3) = x1 + x1x2 + x1x3 + x2x3 (since x1*x1 = x1)
    EXPECT_EQ(P("x1 + x2") * P("x1 + x3"),
              P("x1 + x1*x2 + x1*x3 + x2*x3"));
}

TEST(Polynomial, MultiplicationByMonomialCancels) {
    // (x1 + x1*x2) * x2 = x1x2 + x1x2 = 0
    const Polynomial p = P("x1 + x1*x2");
    EXPECT_TRUE((p * Monomial(1)).is_zero());
}

TEST(Polynomial, PaperElimLinExample) {
    // Section II-C: substituting x1 = x2 + x3 into x1x2 + x2x3 + 1
    // simplifies to x2 + 1.
    const Polynomial p = P("x1*x2 + x2*x3 + 1");
    EXPECT_EQ(p.substitute(0, P("x2 + x3")), P("x2 + 1"));
}

TEST(Polynomial, DegreeAndLinear) {
    EXPECT_EQ(P("x1*x2*x3 + x1").degree(), 3u);
    EXPECT_EQ(P("1").degree(), 0u);
    EXPECT_EQ(Polynomial().degree(), 0u);
    EXPECT_TRUE(P("x1 + x2 + 1").is_linear());
    EXPECT_FALSE(P("x1*x2").is_linear());
}

TEST(Polynomial, Variables) {
    EXPECT_EQ(P("x1*x3 + x2 + 1").variables(), (std::vector<Var>{0, 1, 2}));
    EXPECT_TRUE(P("1").variables().empty());
    EXPECT_TRUE(P("x1*x3 + x2").contains_var(2));
    EXPECT_FALSE(P("x1*x3 + x2").contains_var(3));
}

TEST(Polynomial, LeadingMonomialIsMaxDegLex) {
    const Polynomial p = P("x1*x2 + x3 + 1");
    EXPECT_EQ(p.leading_monomial(), Monomial(std::vector<Var>{0, 1}));
}

TEST(Polynomial, HasConstantTerm) {
    EXPECT_TRUE(P("x1 + 1").has_constant_term());
    EXPECT_FALSE(P("x1 + x2").has_constant_term());
}

TEST(Polynomial, EvaluateMatchesStructure) {
    const Polynomial p = P("x1*x2 + x3 + 1");
    // x1=1, x2=1, x3=1: 1 + 1 + 1 = 1.
    EXPECT_TRUE(p.evaluate({true, true, true}));
    // x1=1, x2=1, x3=0: 1 + 0 + 1 = 0.
    EXPECT_FALSE(p.evaluate({true, true, false}));
}

TEST(Polynomial, ToStringRoundTrip) {
    for (const char* s : {"0", "1", "x1", "x1 + 1", "x1*x2 + x3 + 1",
                          "x1*x2*x3 + x2*x3 + x1 + x2"}) {
        const Polynomial p = P(s);
        EXPECT_EQ(parse_polynomial(p.to_string()), p) << s;
    }
}

TEST(Polynomial, SubstituteByConstants) {
    const Polynomial p = P("x1*x2 + x3 + 1");
    EXPECT_EQ(p.substitute(0, Polynomial::constant(true)), P("x2 + x3 + 1"));
    EXPECT_EQ(p.substitute(0, Polynomial()), P("x3 + 1"));
}

TEST(Polynomial, SubstituteByNegation) {
    // x = !y: x1 -> x2 + 1 in x1*x2: (x2+1)x2 = x2 + x2 = 0... precisely:
    // (x2 + 1) * x2 = x2*x2 + x2 = x2 + x2 = 0.
    EXPECT_TRUE(P("x1*x2").substitute(0, P("x2 + 1")).is_zero());
}

// Property sweep: substitution commutes with evaluation.
class PolynomialRandom : public ::testing::TestWithParam<int> {};

Polynomial random_poly(Rng& rng, unsigned num_vars, unsigned max_monos,
                       unsigned max_deg) {
    std::vector<Monomial> monos;
    const size_t n = 1 + rng.below(max_monos);
    for (size_t i = 0; i < n; ++i) {
        std::vector<Var> vars;
        const size_t d = rng.below(max_deg + 1);
        for (size_t j = 0; j < d; ++j)
            vars.push_back(static_cast<Var>(rng.below(num_vars)));
        monos.emplace_back(std::move(vars));
    }
    return Polynomial(std::move(monos));
}

TEST_P(PolynomialRandom, SubstitutionCommutesWithEvaluation) {
    Rng rng(GetParam());
    const unsigned nv = 6;
    const Polynomial p = random_poly(rng, nv, 8, 3);
    const Var target = static_cast<Var>(rng.below(nv));
    const Polynomial by = random_poly(rng, nv, 4, 2);
    const Polynomial subst = p.substitute(target, by);
    for (uint32_t m = 0; m < (1u << nv); ++m) {
        std::vector<bool> a(nv);
        for (unsigned v = 0; v < nv; ++v) a[v] = (m >> v) & 1;
        std::vector<bool> patched = a;
        patched[target] = by.evaluate(a);
        EXPECT_EQ(subst.evaluate(a), p.evaluate(patched));
    }
}

TEST_P(PolynomialRandom, RingAxioms) {
    Rng rng(GetParam() + 500);
    const unsigned nv = 5;
    const Polynomial a = random_poly(rng, nv, 6, 3);
    const Polynomial b = random_poly(rng, nv, 6, 3);
    const Polynomial c = random_poly(rng, nv, 6, 3);
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ((a * b) * c, a * (b * c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_TRUE((a + a).is_zero());
    EXPECT_EQ(a * a, a) << "Boolean ring: p^2 = p";
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolynomialRandom, ::testing::Range(0, 15));

// ---- parser ------------------------------------------------------------

TEST(AnfParser, BasicForms) {
    EXPECT_TRUE(P("0").is_zero());
    EXPECT_TRUE(P("1").is_one());
    EXPECT_EQ(P("x(3)"), Polynomial::variable(2));
    EXPECT_EQ(P(" x1 * x2 + 1 "), P("x1*x2+1"));
}

TEST(AnfParser, Errors) {
    EXPECT_THROW(parse_polynomial(""), ParseError);
    EXPECT_THROW(parse_polynomial("x"), ParseError);
    EXPECT_THROW(parse_polynomial("x0"), ParseError) << "1-based variables";
    EXPECT_THROW(parse_polynomial("x1 +"), ParseError);
    EXPECT_THROW(parse_polynomial("x1 & x2"), ParseError);
    EXPECT_THROW(parse_polynomial("x(2"), ParseError);
}

TEST(AnfParser, SystemWithComments) {
    const auto sys = parse_system_from_string(
        "c a comment\n"
        "# another\n"
        "x1*x2 + x3\n"
        "\n"
        "x4 + 1\n");
    EXPECT_EQ(sys.polynomials.size(), 2u);
    EXPECT_EQ(sys.num_vars, 4u);
}

TEST(AnfParser, WriteReadRoundTrip) {
    const auto sys = parse_system_from_string("x1*x2 + x3 + 1\nx2 + x4\n");
    std::ostringstream out;
    write_system(out, sys.polynomials);
    const auto again = parse_system_from_string(out.str());
    EXPECT_EQ(again.polynomials, sys.polynomials);
}

}  // namespace
}  // namespace bosphorus::anf
