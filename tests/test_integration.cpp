// Cross-module integration tests: full cryptanalytic pipelines from
// instance generation through Bosphorus to verified solutions, plus solver
// robustness under stress.
#include <gtest/gtest.h>

#include "anf/anf_parser.h"
#include "cnfgen/generators.h"
#include "core/bosphorus.h"
#include "core/pipeline.h"
#include "crypto/sha256.h"
#include "crypto/simon.h"
#include "sat/preprocess.h"
#include "sat/solve_cnf.h"
#include "test_util.h"
#include "util/rng.h"

namespace bosphorus {
namespace {

TEST(Integration, BitcoinNonceRecoveredAndReverified) {
    // End-to-end: encode a weakened nonce-finding instance, solve it, pull
    // the nonce out of the model, and re-hash to confirm the k zero bits.
    Rng rng(1234);
    const unsigned k = 5, rounds = 16;
    const auto inst = crypto::encode_bitcoin_nonce(k, rounds, rng);

    core::Options opt;
    opt.xl.m_budget = 18;
    opt.elimlin.m_budget = 18;
    opt.sat_conflicts_start = 50'000;
    opt.time_budget_s = 60.0;
    core::Bosphorus tool(opt);
    const auto res = tool.process_anf(inst.polys, inst.num_vars);

    std::vector<bool> solution;
    if (res.status == sat::Result::kSat) {
        solution = res.solution;
    } else {
        ASSERT_NE(res.status, sat::Result::kUnsat);
        const auto so = sat::solve_cnf(res.processed_cnf.cnf,
                                       sat::SolverKind::kCmsLike, 60.0);
        ASSERT_EQ(so.result, sat::Result::kSat);
        solution.resize(inst.num_vars);
        for (size_t v = 0; v < inst.num_vars; ++v)
            solution[v] = so.model[v] == sat::LBool::kTrue;
    }

    uint32_t nonce = 0;
    for (unsigned b = 0; b < 32; ++b)
        if (solution[inst.nonce_base + b]) nonce |= 1u << b;
    std::array<uint32_t, 16> block = inst.block;
    block[12] = (block[12] & ~1u) | (nonce & 1u);
    block[13] = (block[13] & 1u) | ((nonce >> 1) << 1);
    const auto digest = crypto::sha256_compress(block, rounds);
    EXPECT_EQ(digest[0] >> (32 - k), 0u)
        << "recovered nonce fails the difficulty check";
}

TEST(Integration, SimonSolutionSatisfiesAllPairs) {
    // A solved Simon instance's key must reproduce every ciphertext (the
    // recovered key can differ from the generation key only if both are
    // consistent with all pairs -- verify via the ANF itself).
    const crypto::Simon32 simon(5);
    Rng rng(77);
    const auto inst = simon.encode(4, rng);
    core::PipelineConfig cfg;
    cfg.solver = sat::SolverKind::kCmsLike;
    cfg.use_bosphorus = true;
    cfg.bosphorus.xl.m_budget = 20;
    cfg.bosphorus.elimlin.m_budget = 20;
    cfg.timeout_s = 60.0;
    cfg.bosphorus_budget_s = 20.0;
    const auto out = core::solve_anf_instance(inst.polys, inst.num_vars, cfg);
    ASSERT_EQ(out.result, sat::Result::kSat);
    EXPECT_TRUE(out.model_verified || out.solved_in_loop);
}

TEST(Integration, AnfFileRoundTripThroughTool) {
    // parse -> process -> write -> re-parse -> same solution set.
    const std::string text =
        "x1*x2 + x3\n"
        "x2*x3 + x1 + 1\n"
        "x3 + x4\n";
    const auto sys = anf::parse_system_from_string(text);
    core::Options opt;
    opt.xl.m_budget = 16;
    opt.elimlin.m_budget = 16;
    opt.use_sat = false;  // keep the processed system non-collapsed
    core::Bosphorus tool(opt);
    const auto res = tool.process_anf(sys.polynomials, 4);

    std::ostringstream out;
    anf::write_system(out, res.processed_anf);
    const auto again = anf::parse_system_from_string(out.str());
    EXPECT_EQ(testutil::anf_models(sys.polynomials, 4),
              testutil::anf_models(again.polynomials, 4));
}

TEST(Integration, GroebnerPlusSatOnSimon) {
    // The Groebner-extended loop stays sound on a real cipher instance.
    const crypto::Simon32 simon(4);
    Rng rng(9);
    const auto inst = simon.encode(2, rng);
    core::Options opt;
    opt.use_groebner = true;
    opt.groebner.max_pair_degree = 3;
    opt.xl.m_budget = 18;
    opt.elimlin.m_budget = 18;
    opt.time_budget_s = 30.0;
    core::Bosphorus tool(opt);
    const auto res = tool.process_anf(inst.polys, inst.num_vars);
    EXPECT_NE(res.status, sat::Result::kUnsat)
        << "satisfiable instance (witness exists) flagged UNSAT";
}

// ---- solver robustness ----------------------------------------------------

TEST(SolverStress, RepeatedSolveCallsAreConsistent) {
    Rng rng(11);
    const sat::Cnf cnf = cnfgen::random_ksat(30, 126, 3, rng);
    sat::Solver solver;
    ASSERT_TRUE(solver.load(cnf));
    const sat::Result first = solver.solve();
    const sat::Result second = solver.solve();
    EXPECT_EQ(first, second) << "re-solving must not change the verdict";
}

TEST(SolverStress, BudgetedThenUnboundedSolve) {
    // Run out of budget, then finish the job on the same solver instance;
    // learnt clauses from the first call must stay sound.
    Rng rng(12);
    const sat::Cnf cnf = cnfgen::pigeonhole(6);
    sat::Solver solver;
    ASSERT_TRUE(solver.load(cnf));
    EXPECT_EQ(solver.solve(/*conflict_budget=*/50), sat::Result::kUnknown);
    EXPECT_EQ(solver.solve(), sat::Result::kUnsat);
}

TEST(SolverStress, ReduceDbKeepsCorrectness) {
    // Enough conflicts to trigger several clause-database reductions.
    Rng rng(13);
    for (int i = 0; i < 3; ++i) {
        const sat::Cnf cnf = cnfgen::random_ksat(60, 258, 3, rng);
        const bool expect_sat =
            sat::solve_cnf(cnf, sat::SolverKind::kLingelingLike).result ==
            sat::Result::kSat;
        const auto out = sat::solve_cnf(cnf, sat::SolverKind::kMinisatLike);
        EXPECT_EQ(out.result == sat::Result::kSat, expect_sat);
        if (out.result == sat::Result::kSat)
            EXPECT_TRUE(sat::model_satisfies(cnf, out.model));
    }
}

TEST(SolverStress, LearntBinariesAreImplied) {
    Rng rng(14);
    for (int inst = 0; inst < 8; ++inst) {
        const sat::Cnf cnf = cnfgen::random_ksat(9, 34, 3, rng);
        const auto models = testutil::cnf_models(cnf);
        if (models.empty()) continue;
        sat::Solver solver;
        if (!solver.load(cnf)) continue;
        solver.solve();
        for (const auto& b : solver.learnt_binaries()) {
            for (const uint32_t m : models) {
                const bool v0 = ((m >> b[0].var()) & 1) != b[0].sign();
                const bool v1 = ((m >> b[1].var()) & 1) != b[1].sign();
                EXPECT_TRUE(v0 || v1)
                    << "learnt binary clause contradicts a model";
            }
        }
    }
}

TEST(SolverStress, PreprocessorThenXorEngine) {
    // Lingeling-like preprocessing freezes XOR variables; combining a
    // preprocessed load with native XOR constraints must stay sound.
    Rng rng(15);
    sat::Cnf cnf = cnfgen::random_ksat(15, 45, 3, rng);
    cnf.xors.push_back({{0, 1, 2, 3}, true});
    cnf.xors.push_back({{3, 4, 5}, false});
    const auto brute = testutil::cnf_models(cnf);
    sat::Cnf work = cnf;
    sat::Preprocessor prep;
    const bool ok = prep.simplify(work);
    if (!ok) {
        EXPECT_TRUE(brute.empty());
        return;
    }
    sat::Solver::Config scfg;
    scfg.enable_xor = true;
    sat::Solver solver(scfg);
    const bool load_ok = solver.load(work);
    const sat::Result r = load_ok ? solver.solve() : sat::Result::kUnsat;
    EXPECT_EQ(r == sat::Result::kSat, !brute.empty());
    if (r == sat::Result::kSat) {
        std::vector<sat::LBool> model(solver.model());
        model.resize(cnf.num_vars, sat::LBool::kFalse);
        prep.extend_model(model);
        EXPECT_TRUE(sat::model_satisfies(cnf, model));
    }
}

}  // namespace
}  // namespace bosphorus
