// Concurrent Session lifecycle against the process-global shared state:
// many threads creating, solving and destroying Sessions at once, all
// interning into the same MonomialStore and hitting the same
// BackendRegistry. The interesting assertions here are (a) verdict
// correctness under contention and (b) the absence of data races -- this
// file is a primary payload of the TSan CI job.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "anf/monomial_store.h"
#include "bosphorus/bosphorus.h"

namespace bosphorus {
namespace {

Problem paper_example() {
    auto p = Problem::from_anf_text(
        "x1*x2 + x3 + x4 + 1\n"
        "x1*x2*x3 + x1 + x3 + 1\n"
        "x1*x3 + x3*x4*x5 + x3\n"
        "x2*x3 + x3*x5 + 1\n"
        "x2*x3 + x5 + 1\n");
    EXPECT_TRUE(p.ok());
    return *p;
}

EngineConfig small_config() {
    EngineConfig cfg;
    cfg.xl.m_budget = 16;
    cfg.elimlin.m_budget = 16;
    cfg.sat_conflicts_start = 1000;
    cfg.max_iterations = 8;
    cfg.time_budget_s = 10.0;
    cfg.emit_processed = false;
    return cfg;
}

TEST(ConcurrentSessions, CreateSolveDestroyUnderContention) {
    // Each thread runs its own Sessions (a Session is single-threaded),
    // but every construction materialises polynomials into the shared
    // MonomialStore and every warm SAT step consults the shared registry
    // -- that cross-thread surface is what this test hammers.
    constexpr int kThreads = 8;
    constexpr int kIterations = 6;
    const Problem base = paper_example();
    const EngineConfig cfg = small_config();

    std::atomic<int> wrong_verdicts{0};
    std::atomic<int> errors{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&base, &cfg, &wrong_verdicts, &errors, t] {
            for (int i = 0; i < kIterations; ++i) {
                Session session(base, cfg);  // create...
                session.push();
                // The unique model is 1,1,1,1,0: even iterations probe a
                // consistent polarity, odd ones a contradiction.
                const bool consistent = (i + t) % 2 == 0;
                session.assume(4, !consistent);
                const Result<Report> r = session.solve();  // ...solve...
                if (!r.ok()) {
                    errors.fetch_add(1);
                    return;
                }
                const sat::Result expect = consistent ? sat::Result::kSat
                                                      : sat::Result::kUnsat;
                if (r->verdict != expect) wrong_verdicts.fetch_add(1);
                session.pop();
            }  // ...destroy, every iteration
        });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(errors.load(), 0);
    EXPECT_EQ(wrong_verdicts.load(), 0);
}

TEST(ConcurrentSessions, StoreStatsRaceWithInterning) {
    // Satellite: MonomialStore::stats() is safe to call while other
    // threads intern (Session construction + solving), and the counters
    // it reports only ever grow -- the store is append-only.
    const Problem base = paper_example();
    const EngineConfig cfg = small_config();
    std::atomic<bool> stop{false};
    std::atomic<int> shrank{0};

    std::thread reader([&stop, &shrank] {
        anf::MonomialStore::Stats last{};
        while (!stop.load(std::memory_order_acquire)) {
            const auto s = anf::MonomialStore::global().stats();
            if (s.entries < last.entries ||
                s.arena_bytes < last.arena_bytes ||
                s.mul_memo_hits < last.mul_memo_hits ||
                s.mul_memo_misses < last.mul_memo_misses) {
                shrank.fetch_add(1);
            }
            last = s;
            std::this_thread::yield();
        }
    });

    std::vector<std::thread> writers;
    for (int t = 0; t < 4; ++t) {
        writers.emplace_back([&base, &cfg] {
            for (int i = 0; i < 4; ++i) {
                Session session(base, cfg);
                session.push();
                session.assume(0, true);
                (void)session.solve();
                session.pop();
            }
        });
    }
    for (auto& th : writers) th.join();
    stop.store(true, std::memory_order_release);
    reader.join();

    EXPECT_EQ(shrank.load(), 0);
    const auto s = anf::MonomialStore::global().stats();
    EXPECT_GT(s.entries, 0u);
    EXPECT_GT(s.arena_bytes, 0u);
    EXPECT_GE(s.entry_bytes, s.entries * sizeof(void*));
}

TEST(ConcurrentSessions, RegistrySnapshotUnderRegistration) {
    // Satellite: BackendRegistry::list() returns an atomic snapshot and
    // create()'s unknown-name error reports the names from the SAME
    // critical section as the failed lookup -- exercised here by racing
    // registrations against listers and erroring creators.
    auto& registry = sat::BackendRegistry::global();
    constexpr int kNew = 12;
    const size_t before = registry.list().size();

    std::atomic<bool> go{false};
    std::thread registrar([&registry, &go] {
        while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
        for (int i = 0; i < kNew; ++i) {
            sat::BackendInfo info;
            info.name = "race-backend-" + std::to_string(i);
            info.description = "registered mid-listing";
            const Status st = registry.register_backend(
                info, [](const std::string&)
                          -> Result<std::unique_ptr<sat::SolverBackend>> {
                    return Status::invalid_argument("unconstructible");
                });
            EXPECT_TRUE(st.ok()) << st.to_string();
        }
    });

    std::vector<std::thread> observers;
    std::atomic<int> inconsistencies{0};
    for (int t = 0; t < 3; ++t) {
        observers.emplace_back([&registry, &go, &inconsistencies, before] {
            while (!go.load(std::memory_order_acquire))
                std::this_thread::yield();
            size_t last = before;
            for (int i = 0; i < 200; ++i) {
                const auto snapshot = registry.list();
                // Snapshots are monotone (registration-ordered, append-
                // only) and never lose an entry a previous snapshot had.
                if (snapshot.size() < last) inconsistencies.fetch_add(1);
                last = snapshot.size();
                // An unknown-name create fails cleanly mid-registration.
                const auto r = registry.create(
                    sat::SolverSpec("definitely-not-registered"));
                if (r.ok()) inconsistencies.fetch_add(1);
                if (r.status().code() != StatusCode::kInvalidArgument)
                    inconsistencies.fetch_add(1);
            }
        });
    }

    go.store(true, std::memory_order_release);
    registrar.join();
    for (auto& th : observers) th.join();
    EXPECT_EQ(inconsistencies.load(), 0);
    EXPECT_EQ(registry.list().size(), before + kNew);
    EXPECT_TRUE(registry.contains("race-backend-0"));
}

TEST(ConcurrentSessions, SessionsRaceWithServiceJobs) {
    // Direct Sessions and a SolveService share the same globals; using
    // both at once from different threads must stay correct.
    const Problem base = paper_example();
    const EngineConfig cfg = small_config();
    ServiceConfig scfg;
    scfg.engine = cfg;
    scfg.n_workers = 2;
    SolveService svc(scfg);

    std::atomic<int> failures{0};
    std::thread direct([&base, &cfg, &failures] {
        for (int i = 0; i < 4; ++i) {
            Session session(base, cfg);
            const Result<Report> r = session.solve();
            if (!r.ok() || r->verdict != sat::Result::kSat)
                failures.fetch_add(1);
        }
    });
    std::thread via_service([&svc, &base, &failures] {
        for (int i = 0; i < 4; ++i) {
            JobRequest req;
            req.client = "svc";
            req.problem = base;
            const Result<JobId> id = svc.submit(std::move(req));
            if (!id.ok()) {
                failures.fetch_add(1);
                continue;
            }
            const auto out = svc.wait(*id);
            if (!out.ok() || out->report.verdict != sat::Result::kSat)
                failures.fetch_add(1);
        }
    });
    direct.join();
    via_service.join();
    EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace bosphorus
