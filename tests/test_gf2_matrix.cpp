#include "gf2/gf2_matrix.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace bosphorus::gf2 {
namespace {

TEST(Gf2Matrix, GetSetFlip) {
    Matrix m(3, 130);  // spans three 64-bit words
    EXPECT_FALSE(m.get(1, 65));
    m.set(1, 65, true);
    EXPECT_TRUE(m.get(1, 65));
    m.flip(1, 65);
    EXPECT_FALSE(m.get(1, 65));
    m.set(2, 129, true);
    EXPECT_TRUE(m.get(2, 129));
    EXPECT_FALSE(m.get(2, 128));
}

TEST(Gf2Matrix, XorRow) {
    Matrix m(2, 70);
    m.set(0, 0, true);
    m.set(0, 69, true);
    m.set(1, 69, true);
    m.xor_row(1, 0);
    EXPECT_TRUE(m.get(1, 0));
    EXPECT_FALSE(m.get(1, 69));
}

TEST(Gf2Matrix, SwapRows) {
    Matrix m(2, 5);
    m.set(0, 1, true);
    m.set(1, 3, true);
    m.swap_rows(0, 1);
    EXPECT_TRUE(m.get(0, 3));
    EXPECT_TRUE(m.get(1, 1));
    EXPECT_FALSE(m.get(0, 1));
}

TEST(Gf2Matrix, RowIsZeroAndFirstSet) {
    Matrix m(2, 100);
    EXPECT_TRUE(m.row_is_zero(0));
    EXPECT_EQ(m.first_set_in_row(0), -1);
    m.set(0, 77, true);
    EXPECT_FALSE(m.row_is_zero(0));
    EXPECT_EQ(m.first_set_in_row(0), 77);
    m.set(0, 3, true);
    EXPECT_EQ(m.first_set_in_row(0), 3);
}

TEST(Gf2Matrix, RowPopcount) {
    Matrix m(1, 128);
    EXPECT_EQ(m.row_popcount(0), 0u);
    for (size_t c : {0u, 63u, 64u, 127u}) m.set(0, c, true);
    EXPECT_EQ(m.row_popcount(0), 4u);
}

TEST(Gf2Matrix, AddRow) {
    Matrix m(1, 10);
    const size_t r = m.add_row();
    EXPECT_EQ(r, 1u);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_TRUE(m.row_is_zero(1));
}

TEST(Gf2Matrix, RrefIdentity) {
    Matrix m = Matrix::identity(5);
    std::vector<size_t> pivots;
    EXPECT_EQ(m.rref(&pivots), 5u);
    EXPECT_EQ(pivots.size(), 5u);
    EXPECT_EQ(m, Matrix::identity(5));
}

TEST(Gf2Matrix, RrefKnownSystem) {
    // x+y=1, y+z=1, x+z=0 -- consistent, rank 2.
    Matrix m(3, 4);  // columns x, y, z, rhs
    m.set(0, 0, true); m.set(0, 1, true); m.set(0, 3, true);
    m.set(1, 1, true); m.set(1, 2, true); m.set(1, 3, true);
    m.set(2, 0, true); m.set(2, 2, true);
    EXPECT_EQ(m.rref(), 2u);
    // Third row must reduce to zero.
    EXPECT_TRUE(m.row_is_zero(2));
}

TEST(Gf2Matrix, RrefDetectsInconsistency) {
    // x=0, x=1 -> reduced row 0...0|1.
    Matrix m(2, 2);
    m.set(0, 0, true);
    m.set(1, 0, true); m.set(1, 1, true);
    m.rref();
    bool found_contradiction = false;
    for (size_t r = 0; r < 2; ++r) {
        if (!m.row_is_zero(r) && m.first_set_in_row(r) == 1)
            found_contradiction = true;
    }
    EXPECT_TRUE(found_contradiction);
}

TEST(Gf2Matrix, MultiplyIdentity) {
    Rng rng(7);
    const Matrix a = Matrix::random(6, 9, rng);
    EXPECT_EQ(Matrix::multiply(a, Matrix::identity(9)), a);
    EXPECT_EQ(Matrix::multiply(Matrix::identity(6), a), a);
}

TEST(Gf2Matrix, MultiplyKnown) {
    Matrix a(2, 2), b(2, 2);
    a.set(0, 0, true); a.set(0, 1, true); a.set(1, 1, true);
    b.set(0, 0, true); b.set(1, 0, true); b.set(1, 1, true);
    // [[1,1],[0,1]] * [[1,0],[1,1]] = [[0,1],[1,1]]
    const Matrix c = Matrix::multiply(a, b);
    EXPECT_FALSE(c.get(0, 0));
    EXPECT_TRUE(c.get(0, 1));
    EXPECT_TRUE(c.get(1, 0));
    EXPECT_TRUE(c.get(1, 1));
}

TEST(Gf2Matrix, NullspaceOfIdentityIsEmpty) {
    Matrix m = Matrix::identity(4);
    EXPECT_TRUE(m.nullspace().empty());
}

TEST(Gf2Matrix, NullspaceKnown) {
    // Single equation x + y = 0 over (x, y): nullspace = {(1,1)}.
    Matrix m(1, 2);
    m.set(0, 0, true);
    m.set(0, 1, true);
    const auto ns = m.nullspace();
    ASSERT_EQ(ns.size(), 1u);
    EXPECT_TRUE(ns[0][0]);
    EXPECT_TRUE(ns[0][1]);
}

// ---- property sweeps ----------------------------------------------------

class Gf2MatrixRandom : public ::testing::TestWithParam<int> {};

TEST_P(Gf2MatrixRandom, RrefIsIdempotentAndRankBounded) {
    Rng rng(GetParam());
    const size_t rows = 1 + rng.below(20);
    const size_t cols = 1 + rng.below(100);
    Matrix m = Matrix::random(rows, cols, rng);
    Matrix copy = m;
    const size_t rank = m.rref();
    EXPECT_LE(rank, std::min(rows, cols));
    Matrix again = m;
    EXPECT_EQ(again.rref(), rank);
    EXPECT_EQ(again, m);  // RREF is a fixed point
    // Row echelon rank agrees with RREF rank.
    EXPECT_EQ(copy.row_echelon(), rank);
}

TEST_P(Gf2MatrixRandom, NullspaceVectorsAreInKernel) {
    Rng rng(GetParam() + 1000);
    const size_t rows = 1 + rng.below(12);
    const size_t cols = 1 + rng.below(24);
    const Matrix original = Matrix::random(rows, cols, rng);
    Matrix work = original;
    const auto ns = work.nullspace();
    // Kernel dimension = cols - rank.
    Matrix rank_probe = original;
    const size_t rank = rank_probe.rref();
    EXPECT_EQ(ns.size(), cols - rank);
    for (const auto& v : ns) {
        for (size_t r = 0; r < rows; ++r) {
            bool acc = false;
            for (size_t c = 0; c < cols; ++c)
                acc ^= original.get(r, c) && v[c];
            EXPECT_FALSE(acc) << "nullspace vector not in kernel";
        }
    }
}

TEST_P(Gf2MatrixRandom, RrefPreservesRowSpace) {
    // Every original row must be a combination of RREF rows: appending an
    // original row to the RREF matrix must not increase the rank.
    Rng rng(GetParam() + 2000);
    const size_t rows = 1 + rng.below(10);
    const size_t cols = 1 + rng.below(20);
    const Matrix original = Matrix::random(rows, cols, rng);
    Matrix reduced = original;
    const size_t rank = reduced.rref();
    for (size_t r = 0; r < rows; ++r) {
        Matrix probe(rows + 1, cols);
        for (size_t i = 0; i < rows; ++i)
            for (size_t c = 0; c < cols; ++c)
                probe.set(i, c, reduced.get(i, c));
        for (size_t c = 0; c < cols; ++c)
            probe.set(rows, c, original.get(r, c));
        EXPECT_EQ(probe.rref(), rank);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Gf2MatrixRandom, ::testing::Range(0, 20));

}  // namespace
}  // namespace bosphorus::gf2
