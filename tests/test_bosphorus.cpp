// End-to-end tests for the Bosphorus workflow (Fig. 1) and the Table II
// solving pipeline.
#include <gtest/gtest.h>

#include "anf/anf_parser.h"
#include "cnfgen/generators.h"
#include "core/bosphorus.h"
#include "core/pipeline.h"
#include "crypto/simon.h"
#include "test_util.h"
#include "util/rng.h"

namespace bosphorus::core {
namespace {

using anf::parse_system_from_string;
using anf::Polynomial;

Options small_options() {
    Options opt;
    opt.xl.m_budget = 16;
    opt.elimlin.m_budget = 16;
    opt.sat_conflicts_start = 1000;
    opt.sat_conflicts_max = 10'000;
    opt.sat_conflicts_step = 1000;
    opt.max_iterations = 8;
    opt.time_budget_s = 10.0;
    return opt;
}

TEST(Bosphorus, SolvesPaperExample) {
    const auto sys = parse_system_from_string(
        "x1*x2 + x3 + x4 + 1\n"
        "x1*x2*x3 + x1 + x3 + 1\n"
        "x1*x3 + x3*x4*x5 + x3\n"
        "x2*x3 + x3*x5 + 1\n"
        "x2*x3 + x5 + 1\n");
    Bosphorus tool(small_options());
    const auto res = tool.process_anf(sys.polynomials, 5);
    ASSERT_EQ(res.status, sat::Result::kSat);
    const std::vector<bool> expect{true, true, true, true, false};
    EXPECT_EQ(res.solution, expect) << "unique solution of the system";
    EXPECT_GT(res.facts_from_xl, 0u) << "XL must contribute facts";
}

TEST(Bosphorus, DetectsUnsat) {
    const auto sys = parse_system_from_string(
        "x1 + x2\n"
        "x2 + x3\n"
        "x1 + x3 + 1\n");
    Bosphorus tool(small_options());
    const auto res = tool.process_anf(sys.polynomials, 3);
    EXPECT_EQ(res.status, sat::Result::kUnsat);
}

TEST(Bosphorus, EmptySystemIsSat) {
    Bosphorus tool(small_options());
    const auto res = tool.process_anf({}, 3);
    EXPECT_EQ(res.status, sat::Result::kSat);
}

TEST(Bosphorus, AblationSwitchesRespected) {
    const auto sys = parse_system_from_string(
        "x1*x2 + x3 + x4 + 1\n"
        "x1*x2*x3 + x1 + x3 + 1\n"
        "x1*x3 + x3*x4*x5 + x3\n"
        "x2*x3 + x3*x5 + 1\n"
        "x2*x3 + x5 + 1\n");
    Options opt = small_options();
    opt.use_xl = false;
    opt.use_elimlin = false;
    Bosphorus tool(opt);
    const auto res = tool.process_anf(sys.polynomials, 5);
    EXPECT_EQ(res.facts_from_xl, 0u);
    EXPECT_EQ(res.facts_from_elimlin, 0u);
    // SAT step alone still decides this tiny instance.
    EXPECT_EQ(res.status, sat::Result::kSat);
}

TEST(Bosphorus, ProcessedCnfCarriesLearntFacts) {
    // On a linear system everything is learnt; the processed CNF must pin
    // all variables (units only).
    const auto sys = parse_system_from_string(
        "x1 + x2\n"
        "x2 + 1\n"
        "x3 + x1 + 1\n");
    Options opt = small_options();
    opt.use_sat = false;  // keep it to XL/ElimLin + propagation
    Bosphorus tool(opt);
    const auto res = tool.process_anf(sys.polynomials, 3);
    EXPECT_EQ(res.vars_fixed, 3u);
    const auto models = testutil::cnf_models(res.processed_cnf.cnf);
    ASSERT_EQ(models.size(), 1u);
    EXPECT_EQ(models[0] & 7u, 3u) << "x1=1, x2=1, x3=0";
}

TEST(Bosphorus, ProcessCnfAugmentsOriginal) {
    Rng rng(17);
    const sat::Cnf cnf = cnfgen::xor_cycle(8, /*satisfiable=*/false, rng);
    Bosphorus tool(small_options());
    const auto res = tool.process_cnf(cnf);
    EXPECT_EQ(res.status, sat::Result::kUnsat)
        << "GF(2) reasoning should refute an inconsistent xor cycle";
}

class BosphorusRandom : public ::testing::TestWithParam<int> {};

TEST_P(BosphorusRandom, AgreesWithBruteForceOnRandomAnf) {
    Rng rng(GetParam());
    const unsigned nv = 4 + rng.below(4);
    std::vector<Polynomial> polys;
    const size_t np = 3 + rng.below(6);
    for (size_t i = 0; i < np; ++i) {
        std::vector<anf::Monomial> monos;
        const size_t nm = 1 + rng.below(4);
        for (size_t j = 0; j < nm; ++j) {
            std::vector<anf::Var> vars;
            const size_t d = rng.below(3);
            for (size_t l = 0; l < d; ++l)
                vars.push_back(static_cast<anf::Var>(rng.below(nv)));
            monos.emplace_back(std::move(vars));
        }
        polys.emplace_back(std::move(monos));
    }
    const auto models = testutil::anf_models(polys, nv);

    Options opt = small_options();
    opt.seed = GetParam() + 1;
    Bosphorus tool(opt);
    const auto res = tool.process_anf(polys, nv);

    if (models.empty()) {
        EXPECT_EQ(res.status, sat::Result::kUnsat);
    } else {
        // The loop usually finds a solution via its SAT step; it must never
        // claim UNSAT, and any solution must check out.
        EXPECT_NE(res.status, sat::Result::kUnsat);
        if (res.status == sat::Result::kSat) {
            uint32_t m = 0;
            for (unsigned v = 0; v < nv; ++v)
                if (res.solution[v]) m |= 1u << v;
            EXPECT_NE(std::find(models.begin(), models.end(), m),
                      models.end());
        }
        // The processed system must preserve the solution set over the
        // original variables.
        const auto processed =
            testutil::anf_models(res.processed_anf, nv);
        EXPECT_EQ(processed, models);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BosphorusRandom, ::testing::Range(0, 25));

// ---- pipeline ---------------------------------------------------------------

TEST(Pipeline, Par2Score) {
    std::vector<PipelineOutcome> outcomes(3);
    outcomes[0].result = sat::Result::kSat;
    outcomes[0].seconds = 1.5;
    outcomes[1].result = sat::Result::kUnsat;
    outcomes[1].seconds = 2.0;
    outcomes[2].result = sat::Result::kUnknown;
    outcomes[2].seconds = 5.0;  // timed out
    EXPECT_DOUBLE_EQ(par2_score(outcomes, 5.0), 1.5 + 2.0 + 10.0);
}

TEST(Pipeline, AnfInstanceBothModes) {
    const crypto::Simon32 simon(4);
    Rng rng(5);
    const auto inst = simon.encode(2, rng);

    for (const bool with : {false, true}) {
        PipelineConfig cfg;
        cfg.solver = sat::SolverKind::kCmsLike;
        cfg.use_bosphorus = with;
        cfg.bosphorus = small_options();
        cfg.timeout_s = 30.0;
        cfg.bosphorus_budget_s = 5.0;
        const auto out = solve_anf_instance(inst.polys, inst.num_vars, cfg);
        EXPECT_EQ(out.result, sat::Result::kSat) << "with=" << with;
        EXPECT_TRUE(out.model_verified || out.solved_in_loop);
    }
}

TEST(Pipeline, CnfInstanceBothModes) {
    Rng rng(6);
    const sat::Cnf cnf = cnfgen::random_ksat(20, 70, 3, rng);
    const bool expect_sat = !testutil::cnf_models(cnf).empty();
    for (const bool with : {false, true}) {
        PipelineConfig cfg;
        cfg.solver = sat::SolverKind::kMinisatLike;
        cfg.use_bosphorus = with;
        cfg.bosphorus = small_options();
        cfg.timeout_s = 30.0;
        cfg.bosphorus_budget_s = 5.0;
        const auto out = solve_cnf_instance(cnf, cfg);
        EXPECT_EQ(out.result == sat::Result::kSat, expect_sat)
            << "with=" << with;
    }
}

// ---- cnfgen sanity ---------------------------------------------------------

TEST(CnfGen, PigeonholeIsUnsat) {
    for (unsigned holes : {2u, 3u}) {
        EXPECT_TRUE(testutil::cnf_models(cnfgen::pigeonhole(holes)).empty());
    }
}

TEST(CnfGen, XorCycleVerdicts) {
    Rng rng(7);
    for (int i = 0; i < 5; ++i) {
        const auto sat_cnf = cnfgen::xor_cycle(5, true, rng);
        EXPECT_FALSE(testutil::cnf_models(sat_cnf).empty());
        const auto unsat_cnf = cnfgen::xor_cycle(5, false, rng);
        EXPECT_TRUE(testutil::cnf_models(unsat_cnf).empty());
    }
}

TEST(CnfGen, RandomKsatShape) {
    Rng rng(8);
    const auto cnf = cnfgen::random_ksat(12, 40, 3, rng);
    EXPECT_EQ(cnf.num_vars, 12u);
    EXPECT_EQ(cnf.clauses.size(), 40u);
    for (const auto& c : cnf.clauses) EXPECT_EQ(c.size(), 3u);
}

TEST(CnfGen, GraphColoringTriangleTwoColorsUnsat) {
    Rng rng(9);
    // A triangle cannot be 2-coloured. Build one deterministically: 3
    // vertices, 3 edges (the generator picks random edges; with 3 vertices
    // and 3 edges it must be the triangle).
    const auto cnf = cnfgen::graph_coloring(3, 3, 2, rng);
    EXPECT_TRUE(testutil::cnf_models(cnf).empty());
}

TEST(CnfGen, SuiteIsWellFormed) {
    const auto suite = cnfgen::sat2017_substitute_suite(1, 42);
    EXPECT_GE(suite.size(), 10u);
    for (const auto& inst : suite) {
        EXPECT_FALSE(inst.name.empty());
        EXPECT_FALSE(inst.family.empty());
        EXPECT_GT(inst.cnf.num_vars, 0u);
        EXPECT_FALSE(inst.cnf.clauses.empty());
    }
}

// ---- rng -------------------------------------------------------------------

TEST(RngTest, Deterministic) {
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, BelowInRange) {
    Rng rng(4);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(rng.below(7), 7u);
        EXPECT_LT(rng.uniform(), 1.0);
        EXPECT_GE(rng.uniform(), 0.0);
    }
}

TEST(RngTest, ShuffleIsPermutation) {
    Rng rng(5);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
    auto w = v;
    rng.shuffle(w);
    std::sort(w.begin(), w.end());
    EXPECT_EQ(w, v);
}

}  // namespace
}  // namespace bosphorus::core
