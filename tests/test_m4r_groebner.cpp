// Tests for the Method-of-Four-Russians elimination (M4RI's algorithm) and
// the degree-bounded Groebner (Buchberger/F4) learning step.
#include <gtest/gtest.h>

#include "anf/anf_parser.h"
#include "core/bosphorus.h"
#include "core/groebner.h"
#include "gf2/gf2_matrix.h"
#include "test_util.h"
#include "util/rng.h"

namespace bosphorus {
namespace {

// ---- Method of Four Russians ------------------------------------------

class M4rRandom : public ::testing::TestWithParam<int> {};

TEST_P(M4rRandom, MatchesPlainRrefExactly) {
    Rng rng(GetParam());
    const size_t rows = 1 + rng.below(60);
    const size_t cols = 1 + rng.below(90);
    const gf2::Matrix original = gf2::Matrix::random(rows, cols, rng);

    gf2::Matrix plain = original;
    std::vector<size_t> pivots;
    const size_t rank_plain = plain.rref(&pivots);  // forces the plain path

    for (const unsigned k : {1u, 2u, 3u, 8u, 11u}) {
        gf2::Matrix fast = original;
        const size_t rank_fast = fast.rref_m4r(k);
        EXPECT_EQ(rank_fast, rank_plain) << "k=" << k;
        EXPECT_EQ(fast, plain) << "k=" << k << " " << rows << "x" << cols;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, M4rRandom, ::testing::Range(0, 30));

TEST(M4r, LargeMatrixDispatch) {
    // rref() on a big matrix dispatches to M4R; spot-check the rank against
    // the row_echelon() count.
    Rng rng(99);
    gf2::Matrix m = gf2::Matrix::random(300, 300, rng);
    gf2::Matrix probe = m;
    const size_t rank = m.rref();
    EXPECT_EQ(probe.row_echelon(), rank);
    // Full-rank with overwhelming probability; at minimum near-full.
    EXPECT_GE(rank, 290u);
}

TEST(M4r, RankDeficientStructured) {
    // Duplicate rows and zero columns exercise the pivot-skip path.
    gf2::Matrix m(6, 10);
    for (size_t c : {1u, 3u, 4u}) {
        m.set(0, c, true);
        m.set(1, c, true);  // duplicate of row 0
    }
    m.set(2, 5, true);
    m.set(3, 5, true);  // duplicate of row 2
    // rows 4, 5 zero
    gf2::Matrix plain = m, fast = m;
    std::vector<size_t> pivots;
    EXPECT_EQ(plain.rref(&pivots), 2u);
    EXPECT_EQ(fast.rref_m4r(4), 2u);
    EXPECT_EQ(fast, plain);
}

TEST(M4r, IdentityStaysIdentity) {
    gf2::Matrix m = gf2::Matrix::identity(50);
    EXPECT_EQ(m.rref_m4r(6), 50u);
    EXPECT_EQ(m, gf2::Matrix::identity(50));
}

// ---- Groebner step -------------------------------------------------------

using anf::parse_system_from_string;
using anf::Polynomial;

TEST(Groebner, DerivesFactBeyondPlainGje) {
    // {x1x2 + x3, x1x3}: the S-pair of the two equations gives
    // x1x3 + x1x2*... -> multiplying relations reveals x3's behaviour.
    // Concretely x1*(x1x2 + x3) = x1x2 + x1x3, + (x1x2 + x3) = x1x3 + x3,
    // + x1x3 = x3. Verify run_groebner finds the linear fact x3.
    const auto sys = parse_system_from_string("x1*x2 + x3\nx1*x3\n");
    core::GroebnerConfig cfg;
    Rng rng(1);
    const auto facts = core::run_groebner(sys.polynomials, cfg, rng);
    bool found = false;
    for (const auto& f : facts) found |= (f == anf::parse_polynomial("x3"));
    EXPECT_TRUE(found) << "expected the consequence x3 = 0";
}

TEST(Groebner, DetectsTrivialIdeal) {
    const auto sys = parse_system_from_string("x1\nx1 + 1\n");
    core::GroebnerConfig cfg;
    Rng rng(1);
    const auto facts = core::run_groebner(sys.polynomials, cfg, rng);
    ASSERT_EQ(facts.size(), 1u);
    EXPECT_TRUE(facts[0].is_one());
}

TEST(Groebner, EmptySystem) {
    core::GroebnerConfig cfg;
    Rng rng(1);
    EXPECT_TRUE(core::run_groebner({}, cfg, rng).empty());
}

class GroebnerRandom : public ::testing::TestWithParam<int> {};

TEST_P(GroebnerRandom, FactsAreConsequences) {
    Rng rng(GetParam() + 300);
    const unsigned nv = 4 + rng.below(3);
    std::vector<Polynomial> polys;
    const size_t np = 3 + rng.below(4);
    for (size_t i = 0; i < np; ++i) {
        std::vector<anf::Monomial> monos;
        const size_t nm = 1 + rng.below(4);
        for (size_t j = 0; j < nm; ++j) {
            std::vector<anf::Var> vars;
            const size_t d = rng.below(3);
            for (size_t l = 0; l < d; ++l)
                vars.push_back(static_cast<anf::Var>(rng.below(nv)));
            monos.emplace_back(std::move(vars));
        }
        polys.emplace_back(std::move(monos));
    }
    const auto models = testutil::anf_models(polys, nv);

    core::GroebnerConfig cfg;
    Rng grng(GetParam() * 7 + 3);
    core::GroebnerStats stats;
    const auto facts = core::run_groebner(polys, cfg, grng, &stats);
    for (const auto& f : facts) {
        if (f.is_one()) {
            EXPECT_TRUE(models.empty()) << "Groebner claimed UNSAT wrongly";
            continue;
        }
        for (uint32_t m : models) {
            std::vector<bool> a(nv);
            for (unsigned v = 0; v < nv; ++v) a[v] = (m >> v) & 1;
            EXPECT_FALSE(f.evaluate(a))
                << "Groebner fact " << f.to_string()
                << " violated by a model";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GroebnerRandom, ::testing::Range(0, 30));

TEST(Groebner, PluggedIntoTheLoop) {
    // The Groebner-enabled loop must agree with brute force and can decide
    // instances with XL and SAT disabled.
    const auto sys = parse_system_from_string(
        "x1*x2 + x3\n"
        "x1*x3\n"
        "x2 + x1 + 1\n");
    core::Options opt;
    opt.use_xl = false;
    opt.use_elimlin = false;
    opt.use_groebner = true;
    opt.xl.m_budget = 16;
    opt.max_iterations = 8;
    core::Bosphorus tool(opt);
    const auto res = tool.process_anf(sys.polynomials, 3);
    EXPECT_GT(res.facts_from_groebner + res.vars_fixed, 0u);
    EXPECT_NE(res.status, sat::Result::kUnsat);
    const auto models = testutil::anf_models(sys.polynomials, 3);
    const auto processed = testutil::anf_models(res.processed_anf, 3);
    EXPECT_EQ(models, processed);
}

}  // namespace
}  // namespace bosphorus
