// Core-pipeline hot-path harness: terms/sec through the XL-expand /
// linearise / ElimLin loop, before vs after the interned-monomial rewrite.
//
// The same pipeline code runs twice, templated on the term representation:
//  - interned  : anf::Monomial / anf::Polynomial (hash-consed MonoIds);
//  - legacy    : anf::legacy::* (heap vector<Var> per monomial -- the
//                pre-interning snapshot, compiled in when the CMake option
//                BOSPHORUS_LEGACY_TERMS is ON).
// Both arms execute bit-identical algebra (no RNG inside the pipeline), so
// their extracted facts and derived verdicts must match exactly -- the
// harness exits nonzero otherwise. The tracked number is terms/sec: the
// count of monomial terms flowing through products, matrix fills and
// substitutions, divided by the arm's wall-clock. Timing alternates
// legacy/interned per repetition so drift cancels.
//
// Output: JSON to stdout and BENCH_hotpath.json (override with
// BENCH_JSON_OUT). `speedup_terms_per_sec` (interned vs legacy) is the
// machine-independent number the CI bench smoke job guards against
// regression. Pass --legacy-terms to time only the legacy arm.
//
// Knobs (defaults tuned so the term algebra, not the shared GF(2)
// elimination, dominates the measurement): BENCH_HOT_INSTANCES (6),
// BENCH_HOT_VARS (24), BENCH_HOT_EQS (128), BENCH_HOT_QUAD_TERMS (8),
// BENCH_HOT_LIN_TERMS (6), BENCH_HOT_LINEAR_EQS (14, planted-consistent
// linear equations mixed in so the ElimLin substitution cascade actually
// runs), BENCH_HOT_XL_DEGREE (1, the paper's default),
// BENCH_HOT_ELIMLIN_ROUNDS (8), BENCH_HOT_REPS (3), BENCH_HOT_CAP
// (1<<18), BENCH_SEED (1).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "anf/monomial_store.h"
#include "anf/polynomial.h"
#include "bosphorus/bosphorus.h"
#include "cnfgen/generators.h"
#include "gf2/gf2_matrix.h"
#include "util/rng.h"
#include "util/timer.h"

#ifdef BOSPHORUS_LEGACY_TERMS
#include "anf/legacy_terms.h"
#endif

namespace {

using bosphorus::Rng;
using bosphorus::Timer;
using Var = bosphorus::anf::Var;

size_t env_or(const char* name, size_t fallback) {
    if (const char* v = std::getenv(name)) return std::strtoul(v, nullptr, 10);
    return fallback;
}

// Representation-neutral instance description: polynomial -> monomial ->
// sorted variable list. Both arms build their own terms from this.
using MonoDesc = std::vector<Var>;
using PolyDesc = std::vector<MonoDesc>;
using SystemDesc = std::vector<PolyDesc>;

struct HotKnobs {
    unsigned xl_degree = 2;
    size_t expand_cap = size_t{1} << 21;  // rows * distinct monomials
    unsigned elimlin_rounds = 4;
};

struct HotOutcome {
    std::vector<std::string> facts;  // generation order, deterministic
    bool contradiction = false;
    uint64_t terms = 0;
};

template <class Mono>
struct MonoHashOf {
    size_t operator()(const Mono& m) const { return m.hash(); }
};

// The mirrored hot pipeline. No randomness, no id-value dependence, no
// unordered-container iteration leaks (sets are membership/size only, the
// column list is sorted before use) -- so the two instantiations must
// produce identical facts.
template <class Poly, class Mono>
HotOutcome run_hot_pipeline(const SystemDesc& desc, const HotKnobs& knobs) {
    HotOutcome out;

    std::vector<Poly> system;
    system.reserve(desc.size());
    for (const PolyDesc& pd : desc) {
        std::vector<Mono> monos;
        monos.reserve(pd.size());
        for (const MonoDesc& md : pd) monos.push_back(Mono(md));
        Poly p(std::move(monos));
        out.terms += p.size();
        if (!p.is_zero()) system.push_back(std::move(p));
    }

    // ---- linearise + reduce + split rows (shared by XL and ElimLin) ----
    struct Reduced {
        std::vector<Poly> linear, nonlinear;
        bool contradiction = false;
    };
    auto linear_pass = [&out](const std::vector<Poly>& polys) {
        Reduced red;
        std::unordered_set<Mono, MonoHashOf<Mono>> seen;
        std::vector<Mono> cols;
        for (const Poly& p : polys) {
            for (const Mono& m : p.monomials()) {
                if (seen.insert(m).second) cols.push_back(m);
            }
        }
        std::sort(cols.begin(), cols.end(),
                  [](const Mono& a, const Mono& b) { return b < a; });
        std::unordered_map<Mono, size_t, MonoHashOf<Mono>> col_of;
        col_of.reserve(cols.size());
        for (size_t c = 0; c < cols.size(); ++c) col_of.emplace(cols[c], c);

        bosphorus::gf2::Matrix mat(polys.size(), cols.size());
        for (size_t r = 0; r < polys.size(); ++r) {
            for (const Mono& m : polys[r].monomials()) {
                mat.flip(r, col_of.at(m));
                ++out.terms;
            }
        }
        if (mat.rows() < 16 || mat.cols() < 16) {
            std::vector<size_t> pivots;
            mat.rref(&pivots);
        } else {
            mat.rref_m4r();
        }

        for (size_t r = 0; r < mat.rows(); ++r) {
            if (mat.row_is_zero(r)) continue;
            std::vector<Mono> monos;
            for (size_t c = 0; c < cols.size(); ++c) {
                if (mat.get(r, c)) monos.push_back(cols[c]);
            }
            Poly p(std::move(monos));
            out.terms += p.size();
            if (p.is_one()) {
                red.contradiction = true;
                return red;
            }
            if (p.degree() <= 1) {
                red.linear.push_back(std::move(p));
            } else {
                red.nonlinear.push_back(std::move(p));
            }
        }
        return red;
    };

    auto note_fact = [&out](const Poly& p) { out.facts.push_back(p.to_string()); };

    // ---- stage 1: XL expansion at fixed degree -------------------------
    {
        std::vector<Var> vars;
        {
            std::vector<Var> all;
            for (const Poly& p : system) {
                const auto pv = p.variables();
                all.insert(all.end(), pv.begin(), pv.end());
            }
            std::sort(all.begin(), all.end());
            all.erase(std::unique(all.begin(), all.end()), all.end());
            vars = std::move(all);
        }
        std::vector<Mono> muls;
        for (Var v : vars) muls.push_back(Mono(v));
        if (knobs.xl_degree >= 2) {
            for (size_t i = 0; i < vars.size(); ++i)
                for (size_t j = i + 1; j < vars.size(); ++j)
                    muls.push_back(Mono(std::vector<Var>{vars[i], vars[j]}));
        }

        std::vector<Poly> expanded = system;
        std::unordered_set<Mono, MonoHashOf<Mono>> monos;
        for (const Poly& p : expanded)
            for (const Mono& m : p.monomials()) monos.insert(m);
        auto size_ok = [&]() {
            return expanded.size() * std::max<size_t>(monos.size(), 1) <
                   knobs.expand_cap;
        };
        for (const Poly& p : system) {
            if (!size_ok()) break;
            bool keep_going = true;
            for (const Mono& mul : muls) {
                Poly prod = p * mul;
                out.terms += prod.size();
                if (!prod.is_zero()) {
                    for (const Mono& m : prod.monomials()) monos.insert(m);
                    expanded.push_back(std::move(prod));
                }
                keep_going = size_ok();
                if (!keep_going) break;
            }
            if (!keep_going) break;
        }

        Reduced red = linear_pass(expanded);
        if (red.contradiction) {
            out.contradiction = true;
            out.facts.assign(1, Poly::constant(true).to_string());
            return out;
        }
        for (const Poly& p : red.linear) note_fact(p);
    }

    // ---- stage 2: ElimLin rounds on the base system --------------------
    std::vector<Poly> work = system;
    for (unsigned round = 0; round < knobs.elimlin_rounds; ++round) {
        Reduced red = linear_pass(work);
        if (red.contradiction) {
            out.contradiction = true;
            out.facts.assign(1, Poly::constant(true).to_string());
            return out;
        }
        if (red.linear.empty()) break;
        for (const Poly& l : red.linear) note_fact(l);

        work = std::move(red.nonlinear);
        std::vector<Poly> pending = red.linear;
        for (size_t li = 0; li < pending.size(); ++li) {
            const Poly l = pending[li];
            if (l.is_zero() || l.degree() < 1) continue;
            // Rarest-variable heuristic, exactly as core::run_elimlin.
            const std::vector<Var> cand = l.variables();
            Var best = cand[0];
            size_t best_count = SIZE_MAX;
            for (Var v : cand) {
                size_t count = 0;
                for (const Poly& q : work) count += q.contains_var(v);
                for (size_t lj = li + 1; lj < pending.size(); ++lj)
                    count += pending[lj].contains_var(v);
                if (count < best_count) {
                    best = v;
                    best_count = count;
                }
            }
            Poly rest = l + Poly::variable(best);
            for (Poly& q : work) {
                if (q.contains_var(best)) {
                    out.terms += q.size();
                    q = q.substitute(best, rest);
                    out.terms += q.size();
                }
            }
            for (size_t lj = li + 1; lj < pending.size(); ++lj) {
                if (pending[lj].contains_var(best))
                    pending[lj] = pending[lj].substitute(best, rest);
            }
        }
        work.erase(std::remove_if(work.begin(), work.end(),
                                  [](const Poly& p) { return p.is_zero(); }),
                   work.end());
        if (work.empty()) break;
    }
    return out;
}

struct ArmTotals {
    double seconds = 0.0;
    uint64_t terms = 0;
    size_t facts = 0;
    double terms_per_sec() const {
        return seconds > 0 ? static_cast<double>(terms) / seconds : 0.0;
    }
};

}  // namespace

int main(int argc, char** argv) {
    bool legacy_only = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--legacy-terms") == 0) legacy_only = true;
    }
#ifndef BOSPHORUS_LEGACY_TERMS
    if (legacy_only) {
        std::fprintf(stderr,
                     "--legacy-terms requires a build with "
                     "-DBOSPHORUS_LEGACY_TERMS=ON\n");
        return 2;
    }
#endif

    const size_t instances = env_or("BENCH_HOT_INSTANCES", 6);
    const size_t num_vars = env_or("BENCH_HOT_VARS", 24);
    const size_t num_eqs = env_or("BENCH_HOT_EQS", 128);
    const size_t num_linear = env_or("BENCH_HOT_LINEAR_EQS", 14);
    const size_t reps = std::max<size_t>(1, env_or("BENCH_HOT_REPS", 3));
    const auto seed = static_cast<uint64_t>(env_or("BENCH_SEED", 1));
    HotKnobs knobs;
    knobs.xl_degree =
        static_cast<unsigned>(env_or("BENCH_HOT_XL_DEGREE", 1));
    knobs.elimlin_rounds =
        static_cast<unsigned>(env_or("BENCH_HOT_ELIMLIN_ROUNDS", 8));
    knobs.expand_cap = env_or("BENCH_HOT_CAP", size_t{1} << 18);
    const char* json_path = std::getenv("BENCH_JSON_OUT");
    if (!json_path) json_path = "BENCH_hotpath.json";

    // Planted quadratic instances, described representation-neutrally.
    Rng gen_rng(seed * 0x9E3779B9ULL + 7);
    std::vector<SystemDesc> descs;
    std::vector<bosphorus::Problem> problems;
    for (size_t i = 0; i < instances; ++i) {
        bosphorus::cnfgen::PlantedAnf inst =
            bosphorus::cnfgen::planted_quadratic_anf(
                num_vars, num_eqs,
                static_cast<unsigned>(env_or("BENCH_HOT_QUAD_TERMS", 6)),
                static_cast<unsigned>(env_or("BENCH_HOT_LIN_TERMS", 4)),
                gen_rng);
        // Mix in planted-consistent linear equations: they surface as
        // linear rows after the first reduction, so ElimLin's
        // substitute-into-dense-quadratics cascade (the merge-heavy part
        // of the hot path) runs instead of fixpointing immediately.
        for (size_t l = 0; l < num_linear; ++l) {
            const size_t k = 3 + gen_rng.below(5);
            std::vector<Var> vs;
            for (size_t t = 0; t < k; ++t)
                vs.push_back(static_cast<Var>(gen_rng.below(num_vars)));
            std::sort(vs.begin(), vs.end());
            vs.erase(std::unique(vs.begin(), vs.end()), vs.end());
            bool parity = false;
            for (Var v : vs) parity ^= inst.planted[v];
            std::vector<bosphorus::anf::Monomial> ms;
            for (Var v : vs) ms.push_back(bosphorus::anf::Monomial(v));
            if (parity) ms.push_back(bosphorus::anf::Monomial());
            inst.polys.push_back(
                bosphorus::anf::Polynomial(std::move(ms)));
        }
        SystemDesc desc;
        for (const auto& p : inst.polys) {
            PolyDesc pd;
            for (const auto& m : p.monomials()) {
                const auto vs = m.vars();
                pd.emplace_back(vs.begin(), vs.end());
            }
            desc.push_back(std::move(pd));
        }
        descs.push_back(std::move(desc));
        problems.push_back(bosphorus::Problem::from_anf(std::move(inst.polys),
                                                        inst.num_vars));
    }

    using IMono = bosphorus::anf::Monomial;
    using IPoly = bosphorus::anf::Polynomial;

    ArmTotals interned, legacy;
    std::vector<HotOutcome> interned_ref(instances), legacy_ref(instances);
    bool have_legacy = false;

    for (size_t rep = 0; rep < reps; ++rep) {
#ifdef BOSPHORUS_LEGACY_TERMS
        {
            using LMono = bosphorus::anf::legacy::Monomial;
            using LPoly = bosphorus::anf::legacy::Polynomial;
            Timer t;
            for (size_t i = 0; i < instances; ++i) {
                HotOutcome o = run_hot_pipeline<LPoly, LMono>(descs[i], knobs);
                legacy.terms += o.terms;
                if (rep == 0) legacy_ref[i] = std::move(o);
            }
            legacy.seconds += t.seconds();
            have_legacy = true;
        }
#endif
        if (!legacy_only) {
            Timer t;
            for (size_t i = 0; i < instances; ++i) {
                HotOutcome o = run_hot_pipeline<IPoly, IMono>(descs[i], knobs);
                interned.terms += o.terms;
                if (rep == 0) interned_ref[i] = std::move(o);
            }
            interned.seconds += t.seconds();
        }
    }
    for (const auto& o : interned_ref) interned.facts += o.facts.size();
    for (const auto& o : legacy_ref) legacy.facts += o.facts.size();

    // ---- equivalence: facts and derived verdicts must be bit-identical.
    bool facts_identical = true;
    bool verdicts_identical = true;
    if (have_legacy && !legacy_only) {
        for (size_t i = 0; i < instances; ++i) {
            if (interned_ref[i].facts != legacy_ref[i].facts) {
                facts_identical = false;
                std::fprintf(stderr,
                             "instance %zu: facts diverge between interned "
                             "and legacy terms\n",
                             i);
            }
            if (interned_ref[i].contradiction != legacy_ref[i].contradiction)
                verdicts_identical = false;
        }
    }

    // ---- the real engine over the same instances (tracked wall-clock,
    // interned path only -- this is what production runs).
    size_t n_sat = 0, n_unsat = 0, n_unknown = 0;
    double engine_s = 0.0;
    if (!legacy_only) {
        bosphorus::EngineConfig cfg;
        cfg.xl.m_budget = 16;
        cfg.elimlin.m_budget = 16;
        cfg.max_iterations = 6;
        cfg.time_budget_s = 20.0;
        cfg.seed = seed;
        Timer t;
        for (const auto& p : problems) {
            bosphorus::Engine engine(cfg);
            auto r = engine.run(p);
            if (!r.ok()) {
                ++n_unknown;
                continue;
            }
            switch (r->verdict) {
                case bosphorus::sat::Result::kSat: ++n_sat; break;
                case bosphorus::sat::Result::kUnsat: ++n_unsat; break;
                default: ++n_unknown; break;
            }
        }
        engine_s = t.seconds();
    }

    const double speedup =
        (have_legacy && !legacy_only && legacy.terms_per_sec() > 0)
            ? interned.terms_per_sec() / legacy.terms_per_sec()
            : 0.0;
    const auto& store = bosphorus::anf::MonomialStore::global();

    std::string json = "{\n";
    char buf[512];
    auto add = [&](const char* fmt, auto... args) {
        std::snprintf(buf, sizeof(buf), fmt, args...);
        json += buf;
    };
    add("  \"bench\": \"hotpath\",\n");
    add("  \"instances\": %zu,\n  \"vars\": %zu,\n  \"equations\": %zu,\n"
        "  \"linear_equations\": %zu,\n",
        instances, num_vars, num_eqs, num_linear);
    add("  \"seed\": %llu,\n  \"reps\": %zu,\n",
        static_cast<unsigned long long>(seed), reps);
    add("  \"xl_degree\": %u,\n  \"elimlin_rounds\": %u,\n  \"expand_cap\": %zu,\n",
        knobs.xl_degree, knobs.elimlin_rounds, knobs.expand_cap);
    if (!legacy_only) {
        add("  \"interned\": {\"seconds\": %.4f, \"terms\": %llu, "
            "\"terms_per_sec\": %.0f, \"facts\": %zu},\n",
            interned.seconds, static_cast<unsigned long long>(interned.terms),
            interned.terms_per_sec(), interned.facts);
    }
    if (have_legacy) {
        add("  \"legacy\": {\"seconds\": %.4f, \"terms\": %llu, "
            "\"terms_per_sec\": %.0f, \"facts\": %zu},\n",
            legacy.seconds, static_cast<unsigned long long>(legacy.terms),
            legacy.terms_per_sec(), legacy.facts);
    }
    add("  \"speedup_terms_per_sec\": %.3f,\n", speedup);
    add("  \"facts_identical\": %s,\n  \"verdicts_identical\": %s,\n",
        facts_identical ? "true" : "false",
        verdicts_identical ? "true" : "false");
    add("  \"engine\": {\"seconds\": %.4f, \"sat\": %zu, \"unsat\": %zu, "
        "\"unknown\": %zu},\n",
        engine_s, n_sat, n_unsat, n_unknown);
    add("  \"store\": {\"monomials\": %zu, \"mul_memo_hits\": %zu, "
        "\"mul_memo_misses\": %zu}\n}\n",
        store.size(), store.mul_memo_hits(), store.mul_memo_misses());

    std::fputs(json.c_str(), stdout);
    if (std::ofstream out{json_path}) out << json;
    else std::fprintf(stderr, "warning: cannot write %s\n", json_path);

    return (facts_identical && verdicts_identical) ? 0 : 1;
}
