// Microbenchmarks of the substrate libraries (google-benchmark): GF(2)
// Gauss-Jordan elimination (the M4RI substitute's hot loop), Boolean
// polynomial arithmetic (PolyBoRi substitute), Quine-McCluskey
// minimisation (ESPRESSO substitute) and CDCL propagation throughput.
#include <benchmark/benchmark.h>

#include "anf/polynomial.h"
#include "cnfgen/generators.h"
#include "core/linearize.h"
#include "crypto/simon.h"
#include "gf2/gf2_matrix.h"
#include "minimize/quine_mccluskey.h"
#include "sat/solve_cnf.h"
#include "sat/solver.h"
#include "util/rng.h"

using namespace bosphorus;

static void BM_Gf2Rref(benchmark::State& state) {
    const size_t n = state.range(0);
    Rng rng(1);
    const gf2::Matrix base = gf2::Matrix::random(n, n, rng);
    for (auto _ : state) {
        gf2::Matrix m = base;
        benchmark::DoNotOptimize(m.rref());
    }
    state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_Gf2Rref)->Arg(64)->Arg(256)->Arg(1024)->Complexity();

static void BM_Gf2RrefM4R(benchmark::State& state) {
    // Method of Four Russians vs the plain elimination above (M4RI's
    // signature optimisation; same reduced matrix, ~k-fold fewer row XORs).
    const size_t n = state.range(0);
    Rng rng(1);
    const gf2::Matrix base = gf2::Matrix::random(n, n, rng);
    for (auto _ : state) {
        gf2::Matrix m = base;
        benchmark::DoNotOptimize(m.rref_m4r(8));
    }
}
BENCHMARK(BM_Gf2RrefM4R)->Arg(64)->Arg(256)->Arg(1024);

static void BM_Gf2Nullspace(benchmark::State& state) {
    const size_t n = state.range(0);
    Rng rng(2);
    const gf2::Matrix base = gf2::Matrix::random(n / 2, n, rng);
    for (auto _ : state) {
        gf2::Matrix m = base;
        benchmark::DoNotOptimize(m.nullspace());
    }
}
BENCHMARK(BM_Gf2Nullspace)->Arg(64)->Arg(256);

static void BM_PolynomialMultiply(benchmark::State& state) {
    Rng rng(3);
    const unsigned terms = state.range(0);
    std::vector<anf::Monomial> ma, mb;
    for (unsigned i = 0; i < terms; ++i) {
        ma.push_back(anf::Monomial(std::vector<anf::Var>{
            static_cast<anf::Var>(rng.below(32)),
            static_cast<anf::Var>(rng.below(32))}));
        mb.push_back(anf::Monomial(std::vector<anf::Var>{
            static_cast<anf::Var>(rng.below(32))}));
    }
    const anf::Polynomial a(std::move(ma)), b(std::move(mb));
    for (auto _ : state) benchmark::DoNotOptimize(a * b);
}
BENCHMARK(BM_PolynomialMultiply)->Arg(4)->Arg(16)->Arg(64);

static void BM_PolynomialSubstitute(benchmark::State& state) {
    Rng rng(4);
    std::vector<anf::Monomial> ms;
    for (int i = 0; i < 32; ++i)
        ms.push_back(anf::Monomial(std::vector<anf::Var>{
            static_cast<anf::Var>(rng.below(16)),
            static_cast<anf::Var>(rng.below(16))}));
    const anf::Polynomial p(std::move(ms));
    const anf::Polynomial by = anf::Polynomial::variable(20) +
                               anf::Polynomial::variable(21) +
                               anf::Polynomial::constant(true);
    for (auto _ : state) benchmark::DoNotOptimize(p.substitute(3, by));
}
BENCHMARK(BM_PolynomialSubstitute);

static void BM_Linearize(benchmark::State& state) {
    const crypto::Simon32 simon(8);
    Rng rng(5);
    const auto inst = simon.encode(4, rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(core::linearize(inst.polys));
}
BENCHMARK(BM_Linearize);

static void BM_QuineMccluskey(benchmark::State& state) {
    const unsigned k = state.range(0);
    Rng rng(6);
    std::vector<bool> on(1u << k);
    for (size_t i = 0; i < on.size(); ++i) on[i] = rng.coin();
    for (auto _ : state)
        benchmark::DoNotOptimize(minimize::minimize_sop(on, k));
}
BENCHMARK(BM_QuineMccluskey)->Arg(4)->Arg(6)->Arg(8);

static void BM_SolverPropagation(benchmark::State& state) {
    // Measure full solve on a medium random 3-SAT instance (propagation-
    // dominated); reported as conflicts/sec via counters.
    Rng rng(7);
    const sat::Cnf cnf = cnfgen::random_ksat(200, 840, 3, rng);
    for (auto _ : state) {
        sat::Solver solver;
        solver.load(cnf);
        benchmark::DoNotOptimize(solver.solve(/*conflict_budget=*/5000));
        state.counters["propagations"] = static_cast<double>(
            solver.stats().propagations);
    }
}
BENCHMARK(BM_SolverPropagation);

static void BM_XorEnginePropagation(benchmark::State& state) {
    Rng rng(8);
    const sat::Cnf cnf = cnfgen::xor_cycle(400, true, rng);
    for (auto _ : state) {
        sat::Solver::Config cfg;
        cfg.enable_xor = true;
        sat::Solver solver(cfg);
        sat::Cnf native = cnf;
        native.xors = sat::recover_xors(cnf);
        solver.load(native);
        benchmark::DoNotOptimize(solver.solve(5000));
    }
}
BENCHMARK(BM_XorEnginePropagation);

BENCHMARK_MAIN();
