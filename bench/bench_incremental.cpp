// Incremental-solving benchmark -- warm Session re-solves vs an
// equivalent cold Engine::run loop on a Simon-style key sweep.
//
// One planted overdetermined quadratic ANF system stands in for a cipher
// encoding; the sweep enumerates all assignments of the first
// BENCH_SWEEP_BITS "key" variables (one of which matches the planted
// model). The cold loop pays full materialisation + simplification per
// candidate; the warm loop opens a Session scope, assumes the bits,
// re-solves against the already-simplified base with a live SAT solver,
// and pops.
//
// Checks, enforced with a nonzero exit code:
//  * warm and cold verdicts are bit-identical per candidate, and so are
//    the SAT solutions (the planted system is overdetermined, so models
//    are unique);
//  * a second warm sweep reproduces the first exactly (determinism);
//  * a third sweep with SAT in-processing disabled must match the cold
//    verdicts bit for bit, and the in-processing cold overhead must stay
//    within 5% (+0.1s absolute timing slack);
//  * the warm loop must not be slower than cold (5% noise slack; the
//    strict comparison is still reported as warm_strictly_faster).
//
// Output is machine-readable JSON, printed to stdout and written to
// BENCH_incremental.json (override with BENCH_JSON_OUT). Knobs:
// BENCH_VARS (32), BENCH_EQS (48), BENCH_SWEEP_BITS (4), BENCH_SEED (1).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bosphorus/bosphorus.h"
#include "cnfgen/generators.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace bosphorus;

namespace {

size_t env_or(const char* name, size_t fallback) {
    if (const char* v = std::getenv(name)) return std::strtoul(v, nullptr, 10);
    return fallback;
}

EngineConfig bench_config(uint64_t seed) {
    EngineConfig cfg;
    cfg.xl.m_budget = 18;
    cfg.elimlin.m_budget = 18;
    cfg.sat_conflicts_start = 2'000;
    cfg.sat_conflicts_max = 20'000;
    cfg.sat_conflicts_step = 2'000;
    cfg.max_iterations = 12;
    cfg.time_budget_s = 30.0;
    cfg.seed = seed;
    cfg.emit_processed = false;  // the sweep only consumes verdicts
    return cfg;
}

struct Outcome {
    sat::Result verdict = sat::Result::kUnknown;
    std::vector<bool> solution;

    bool operator==(const Outcome&) const = default;
};

const char* verdict_name(sat::Result r) {
    if (r == sat::Result::kSat) return "sat";
    if (r == sat::Result::kUnsat) return "unsat";
    return "unknown";
}

}  // namespace

int main() {
    const size_t num_vars = env_or("BENCH_VARS", 32);
    const size_t num_eqs = env_or("BENCH_EQS", 48);
    const size_t sweep_bits = env_or("BENCH_SWEEP_BITS", 4);
    const auto seed = static_cast<uint64_t>(env_or("BENCH_SEED", 1));
    const char* json_path = std::getenv("BENCH_JSON_OUT");
    if (!json_path) json_path = "BENCH_incremental.json";

    Rng gen_rng(seed * 0x9E3779B9ULL + 7);
    cnfgen::PlantedAnf inst = cnfgen::planted_quadratic_anf(
        num_vars, num_eqs, 3, 2, gen_rng);
    const Problem base = Problem::from_anf(inst.polys, inst.num_vars);
    const size_t n_candidates = size_t{1} << sweep_bits;
    const EngineConfig cfg = bench_config(seed);

    // (a) Cold reference: every candidate re-materialises the full system
    // (base + assumption units) and runs a fresh one-shot Engine. Run
    // once with the default config and once with SAT in-processing
    // disabled -- the verdicts must agree exactly and the in-processing
    // overhead on cold one-shot solves is gated below.
    auto cold_sweep = [&](const EngineConfig& sweep_cfg, double* seconds,
                          std::vector<Outcome>* out) {
        Timer cold_timer;
        out->clear();
        out->reserve(n_candidates);
        for (size_t mask = 0; mask < n_candidates; ++mask) {
            Problem p = base;
            for (size_t v = 0; v < sweep_bits; ++v) {
                anf::Polynomial unit = anf::Polynomial::variable(
                    static_cast<anf::Var>(v));
                if ((mask >> v) & 1) unit += anf::Polynomial::constant(true);
                if (!p.add_polynomial(unit).ok()) return false;
            }
            Engine engine(sweep_cfg);
            Result<Report> r = engine.run(p);
            if (!r.ok()) {
                std::fprintf(stderr, "cold run %zu failed: %s\n", mask,
                             r.status().to_string().c_str());
                return false;
            }
            out->push_back({r->verdict, std::move(r->solution)});
        }
        *seconds = cold_timer.seconds();
        return true;
    };
    double cold_s = 0.0;
    std::vector<Outcome> cold;
    if (!cold_sweep(cfg, &cold_s, &cold)) return 1;

    EngineConfig cfg_noinproc = cfg;
    cfg_noinproc.sat_inprocess = false;
    double cold_noinproc_s = 0.0;
    std::vector<Outcome> cold_noinproc;
    if (!cold_sweep(cfg_noinproc, &cold_noinproc_s, &cold_noinproc)) return 1;

    // (b) The warm loop: one Session, one base simplification, push /
    // assume / solve / pop per candidate. Run twice for the determinism
    // check.
    auto warm_sweep = [&](double* seconds) {
        Timer warm_timer;
        std::vector<Outcome> out;
        out.reserve(n_candidates);
        Session session(base, cfg);
        for (size_t mask = 0; mask < n_candidates; ++mask) {
            if (!session.push().ok()) return out;
            for (size_t v = 0; v < sweep_bits; ++v) {
                if (!session.assume(static_cast<anf::Var>(v), (mask >> v) & 1)
                         .ok())
                    return out;
            }
            Result<Report> r = session.solve();
            if (!r.ok()) {
                std::fprintf(stderr, "warm solve %zu failed: %s\n", mask,
                             r.status().to_string().c_str());
                return out;
            }
            out.push_back({r->verdict, std::move(r->solution)});
            if (!session.pop().ok()) return out;
        }
        *seconds = warm_timer.seconds();
        return out;
    };
    double warm_s = 0.0, warm2_s = 0.0;
    const std::vector<Outcome> warm = warm_sweep(&warm_s);
    const std::vector<Outcome> warm2 = warm_sweep(&warm2_s);

    // Three nested checks, strictest first:
    //  * identical      -- warm == cold bit for bit (holds at the default
    //                      knobs; larger instances can leave one path at
    //                      kUnknown within its budgets);
    //  * no_contradiction / solutions equal -- a SAT-vs-UNSAT clash or a
    //    model mismatch where both decided would be a soundness bug;
    //  * as_decisive    -- warm must never be *weaker* (cold decided,
    //                      warm kUnknown): the live solver falls back to
    //                      a cold step exactly to guarantee this.
    const bool identical = warm.size() == n_candidates && warm == cold;
    const bool deterministic = warm == warm2;
    bool no_contradiction = warm.size() == n_candidates;
    bool as_decisive = warm.size() == n_candidates;
    size_t n_sat = 0, n_unsat = 0, n_unknown = 0;
    for (size_t i = 0; i < cold.size(); ++i) {
        switch (cold[i].verdict) {
            case sat::Result::kSat: ++n_sat; break;
            case sat::Result::kUnsat: ++n_unsat; break;
            default: ++n_unknown; break;
        }
        if (i >= warm.size()) break;
        const sat::Result cv = cold[i].verdict, wv = warm[i].verdict;
        if (cv != sat::Result::kUnknown && wv != sat::Result::kUnknown) {
            if (cv != wv) no_contradiction = false;
            if (cv == sat::Result::kSat && wv == sat::Result::kSat &&
                cold[i].solution != warm[i].solution)
                no_contradiction = false;
        }
        if (cv != sat::Result::kUnknown && wv == sat::Result::kUnknown)
            as_decisive = false;
        if (!(warm[i] == cold[i])) {
            std::fprintf(stderr,
                         "candidate %zu diverged: cold=%s warm=%s\n", i,
                         verdict_name(cv), verdict_name(wv));
        }
    }

    // In-processing differential: same verdicts (and models) with the
    // engine on and off, and a bounded cold-solve overhead. The absolute
    // 0.1s slack keeps the 5% relative gate meaningful at sub-second
    // sweep times, where timer noise dominates.
    const bool inproc_verdicts_identical = cold_noinproc == cold;
    const double inprocess_overhead =
        cold_noinproc_s > 0 ? cold_s / cold_noinproc_s - 1.0 : 0.0;
    const bool inproc_overhead_ok =
        cold_s <= cold_noinproc_s * 1.05 + 0.1;
    const bool warm_not_slower = warm_s <= cold_s * 1.05;

    const double speedup = warm_s > 0 ? cold_s / warm_s : 0.0;
    char json[1536];
    std::snprintf(
        json, sizeof(json),
        "{\n"
        "  \"bench\": \"incremental\",\n"
        "  \"vars\": %zu,\n"
        "  \"equations\": %zu,\n"
        "  \"sweep_bits\": %zu,\n"
        "  \"candidates\": %zu,\n"
        "  \"seed\": %llu,\n"
        "  \"cold_s\": %.4f,\n"
        "  \"cold_no_inprocess_s\": %.4f,\n"
        "  \"warm_s\": %.4f,\n"
        "  \"warm_repeat_s\": %.4f,\n"
        "  \"speedup\": %.3f,\n"
        "  \"inprocess_overhead\": %.4f,\n"
        "  \"inprocess_overhead_ok\": %s,\n"
        "  \"inprocess_verdicts_identical\": %s,\n"
        "  \"warm_strictly_faster\": %s,\n"
        "  \"warm_not_slower\": %s,\n"
        "  \"verdicts_identical\": %s,\n"
        "  \"no_contradictions\": %s,\n"
        "  \"warm_at_least_as_decisive\": %s,\n"
        "  \"deterministic\": %s,\n"
        "  \"verdicts\": {\"sat\": %zu, \"unsat\": %zu, \"unknown\": %zu}\n"
        "}\n",
        num_vars, num_eqs, sweep_bits, n_candidates,
        static_cast<unsigned long long>(seed), cold_s, cold_noinproc_s,
        warm_s, warm2_s, speedup, inprocess_overhead,
        inproc_overhead_ok ? "true" : "false",
        inproc_verdicts_identical ? "true" : "false",
        warm_s < cold_s ? "true" : "false",
        warm_not_slower ? "true" : "false",
        identical ? "true" : "false", no_contradiction ? "true" : "false",
        as_decisive ? "true" : "false", deterministic ? "true" : "false",
        n_sat, n_unsat, n_unknown);

    std::fputs(json, stdout);
    if (std::ofstream out{json_path}) out << json;
    else std::fprintf(stderr, "warning: cannot write %s\n", json_path);

    return (no_contradiction && as_decisive && deterministic &&
            inproc_verdicts_identical && inproc_overhead_ok &&
            warm_not_slower)
               ? 0
               : 1;
}
