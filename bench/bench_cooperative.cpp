// Cooperative-portfolio benchmark: wall-clock-to-first-verdict of a
// fact-sharing portfolio race vs the same race run isolated, on Table II
// substrates (planted overdetermined quadratic systems standing in for
// cipher encodings, plus round-reduced Simon32/64 key-recovery
// instances).
//
// Checks, enforced with a nonzero exit code:
//  * the cooperative race NEVER contradicts the isolated oracle (a
//    SAT-vs-UNSAT clash is a soundness bug in the fact exchange);
//  * the cooperative race is at least as decisive (isolated decided ->
//    cooperative decided).
// Wall-clock is reported, not enforced: on a loaded CI box timing noise
// must not fail the build, but the JSON carries the per-instance and
// aggregate numbers so regressions are visible in the artifact.
//
// Output is machine-readable JSON, printed to stdout and written to
// BENCH_cooperative.json (override with BENCH_JSON_OUT). Knobs:
// BENCH_PLANTED (4), BENCH_SIMON (2), BENCH_TIMEOUT (20), BENCH_SEED (1),
// BENCH_THREADS (0 = hardware).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bosphorus/bosphorus.h"
#include "cnfgen/generators.h"
#include "crypto/simon.h"
#include "util/rng.h"

using namespace bosphorus;

namespace {

size_t env_or(const char* name, size_t fallback) {
    if (const char* v = std::getenv(name)) return std::strtoul(v, nullptr, 10);
    return fallback;
}

double env_or_d(const char* name, double fallback) {
    if (const char* v = std::getenv(name)) return std::strtod(v, nullptr);
    return fallback;
}

EngineConfig bench_config(uint64_t seed, double timeout_s) {
    EngineConfig cfg;
    cfg.xl.m_budget = 18;
    cfg.elimlin.m_budget = 18;
    cfg.sat_conflicts_start = 5'000;
    cfg.sat_conflicts_max = 50'000;
    cfg.sat_conflicts_step = 5'000;
    cfg.max_iterations = 12;
    cfg.time_budget_s = timeout_s;
    cfg.seed = seed;
    cfg.emit_processed = false;  // the race only consumes verdicts
    return cfg;
}

const char* verdict_name(sat::Result r) {
    if (r == sat::Result::kSat) return "sat";
    if (r == sat::Result::kUnsat) return "unsat";
    return "unknown";
}

struct Row {
    std::string name;
    sat::Result iso_verdict = sat::Result::kUnknown;
    sat::Result coop_verdict = sat::Result::kUnknown;
    double iso_s = 0.0;
    double coop_s = 0.0;
    uint64_t facts_shared = 0;
    uint64_t facts_suppressed = 0;
    size_t facts_imported = 0;  // summed over the cooperative entries
};

}  // namespace

int main() {
    const size_t n_planted = env_or("BENCH_PLANTED", 4);
    const size_t n_simon = env_or("BENCH_SIMON", 2);
    const double timeout_s = env_or_d("BENCH_TIMEOUT", 20.0);
    const auto seed = static_cast<uint64_t>(env_or("BENCH_SEED", 1));
    const auto n_threads = static_cast<unsigned>(env_or("BENCH_THREADS", 0));
    const char* json_path = std::getenv("BENCH_JSON_OUT");
    if (!json_path) json_path = "BENCH_cooperative.json";

    // The instance set: planted overdetermined quadratic systems (the
    // bench_incremental substrate) and Simon32/64 key recovery with 2
    // known plaintexts at 5 rounds -- small enough for CI, structured
    // enough that the loop learns facts worth sharing.
    std::vector<std::pair<std::string, Problem>> instances;
    for (size_t i = 0; i < n_planted; ++i) {
        Rng rng(seed * 0x9E3779B9ULL + i * 101 + 7);
        cnfgen::PlantedAnf inst =
            cnfgen::planted_quadratic_anf(40, 60, 3, 2, rng);
        instances.emplace_back(
            "planted-40x60#" + std::to_string(i),
            Problem::from_anf(std::move(inst.polys), inst.num_vars));
    }
    for (size_t i = 0; i < n_simon; ++i) {
        const crypto::Simon32 simon(5);
        Rng rng(seed * 7919 + i * 13 + 3);
        auto inst = simon.encode(2, rng);
        instances.emplace_back(
            "simon-[2,5]#" + std::to_string(i),
            Problem::from_anf(std::move(inst.polys), inst.num_vars));
    }

    std::vector<Row> rows;
    bool contradiction = false;
    bool less_decisive = false;
    double iso_total = 0.0, coop_total = 0.0;
    for (size_t i = 0; i < instances.size(); ++i) {
        const EngineConfig cfg = bench_config(seed + i, timeout_s);
        std::vector<PortfolioEntry> entries = default_portfolio(cfg);

        Row row;
        row.name = instances[i].first;

        const Result<PortfolioReport> iso =
            solve_portfolio(instances[i].second, entries, n_threads);
        if (!iso.ok()) {
            std::fprintf(stderr, "isolated race on %s failed: %s\n",
                         row.name.c_str(), iso.status().to_string().c_str());
            return 1;
        }
        row.iso_verdict = iso->report.verdict;
        row.iso_s = iso->seconds;

        for (PortfolioEntry& e : entries) e.config.cooperative = true;
        const Result<PortfolioReport> coop =
            solve_portfolio(instances[i].second, entries, n_threads);
        if (!coop.ok()) {
            std::fprintf(stderr, "cooperative race on %s failed: %s\n",
                         row.name.c_str(), coop.status().to_string().c_str());
            return 1;
        }
        row.coop_verdict = coop->report.verdict;
        row.coop_s = coop->seconds;
        row.facts_shared = coop->facts_shared;
        row.facts_suppressed = coop->facts_suppressed;
        for (const PortfolioOutcome& o : coop->outcomes)
            row.facts_imported += o.facts_imported;

        if (row.iso_verdict != sat::Result::kUnknown &&
            row.coop_verdict != sat::Result::kUnknown &&
            row.iso_verdict != row.coop_verdict) {
            contradiction = true;
            std::fprintf(stderr,
                         "VERDICT DIVERGENCE on %s: isolated=%s "
                         "cooperative=%s\n",
                         row.name.c_str(), verdict_name(row.iso_verdict),
                         verdict_name(row.coop_verdict));
        }
        if (row.iso_verdict != sat::Result::kUnknown &&
            row.coop_verdict == sat::Result::kUnknown) {
            less_decisive = true;
            std::fprintf(stderr,
                         "cooperative race lost decisiveness on %s\n",
                         row.name.c_str());
        }
        iso_total += row.iso_s;
        coop_total += row.coop_s;
        rows.push_back(std::move(row));
    }

    std::string body;
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row& r = rows[i];
        char line[512];
        std::snprintf(
            line, sizeof(line),
            "    {\"name\": \"%s\", \"isolated\": {\"verdict\": \"%s\", "
            "\"seconds\": %.4f}, \"cooperative\": {\"verdict\": \"%s\", "
            "\"seconds\": %.4f, \"facts_shared\": %llu, "
            "\"facts_suppressed\": %llu, \"facts_imported\": %zu}}%s\n",
            r.name.c_str(), verdict_name(r.iso_verdict), r.iso_s,
            verdict_name(r.coop_verdict), r.coop_s,
            static_cast<unsigned long long>(r.facts_shared),
            static_cast<unsigned long long>(r.facts_suppressed),
            r.facts_imported, i + 1 < rows.size() ? "," : "");
        body += line;
    }

    char head[1024];
    std::snprintf(
        head, sizeof(head),
        "{\n"
        "  \"bench\": \"cooperative\",\n"
        "  \"instances\": %zu,\n"
        "  \"seed\": %llu,\n"
        "  \"threads\": %u,\n"
        "  \"timeout_s\": %.1f,\n"
        "  \"isolated_total_s\": %.4f,\n"
        "  \"cooperative_total_s\": %.4f,\n"
        "  \"cooperative_no_worse\": %s,\n"
        "  \"verdicts_equivalent\": %s,\n"
        "  \"rows\": [\n",
        rows.size(), static_cast<unsigned long long>(seed), n_threads,
        timeout_s, iso_total, coop_total,
        // 10% grace: thread scheduling noise must not read as a loss.
        coop_total <= iso_total * 1.10 ? "true" : "false",
        (!contradiction && !less_decisive) ? "true" : "false");

    const std::string json = std::string(head) + body + "  ]\n}\n";
    std::fputs(json.c_str(), stdout);
    if (std::ofstream out{json_path}) out << json;
    else std::fprintf(stderr, "warning: cannot write %s\n", json_path);

    return (contradiction || less_decisive) ? 1 : 0;
}
