// Reproduces the Fig. 1 workflow narrative on the section II-E example:
// which facts each technique (XL, ElimLin, SAT) learns, and how ANF
// propagation collapses the system to its unique solution.
#include <cstdio>

#include "anf/anf_parser.h"
#include "bosphorus/bosphorus.h"
#include "core/elimlin.h"
#include "core/xl.h"
#include "sat/solver.h"

using namespace bosphorus;

int main() {
    std::printf("=== Fig. 1 workflow on the section II-E example ===\n");
    const auto sys = anf::parse_system_from_string(
        "x1*x2 + x3 + x4 + 1\n"
        "x1*x2*x3 + x1 + x3 + 1\n"
        "x1*x3 + x3*x4*x5 + x3\n"
        "x2*x3 + x3*x5 + 1\n"
        "x2*x3 + x5 + 1\n");

    Rng rng(1);

    std::printf("\n[XL, D=1] learnt facts (paper lists 6):\n");
    core::XlConfig xl_cfg;
    xl_cfg.m_budget = 20;
    const auto xl_facts = core::run_xl(sys.polynomials, xl_cfg, rng);
    for (const auto& f : xl_facts)
        std::printf("  %s\n", f.to_string().c_str());

    // Per Fig. 1, ElimLin runs on the master copy *after* XL's facts have
    // been added; its initial GJE then surfaces the four linear equations
    // the paper lists, and substitution derives x1 + 1.
    std::printf("\n[ElimLin on the XL-augmented system] learnt facts "
                "(paper: 4 linear + x1 + 1):\n");
    std::vector<anf::Polynomial> augmented = sys.polynomials;
    augmented.insert(augmented.end(), xl_facts.begin(), xl_facts.end());
    core::ElimLinConfig el_cfg;
    el_cfg.m_budget = 20;
    for (const auto& f : core::run_elimlin(augmented, el_cfg, rng))
        std::printf("  %s\n", f.to_string().c_str());

    std::printf("\n[SAT] learnt units from the conflict-bounded solver:\n");
    const auto conv = core::anf_to_cnf(sys.polynomials, 5);
    sat::Solver solver;
    solver.load(conv.cnf);
    solver.solve(/*conflict_budget=*/10'000);
    for (const sat::Lit u : solver.learnt_units()) {
        if (u.var() < 5)
            std::printf("  x%u = %d\n", u.var() + 1, u.sign() ? 0 : 1);
    }

    std::printf("\n[full loop] ");
    EngineConfig opt;
    opt.xl.m_budget = 20;
    opt.elimlin.m_budget = 20;
    Engine engine(opt);
    const auto run = engine.run(Problem::from_anf(sys.polynomials, 5));
    if (!run.ok()) {
        std::printf("engine failed: %s\n", run.status().to_string().c_str());
        return 1;
    }
    const Report& res = *run;
    if (res.verdict == sat::Result::kSat) {
        std::printf("solved:");
        for (size_t v = 0; v < 5; ++v)
            std::printf(" x%zu=%d", v + 1, res.solution[v] ? 1 : 0);
        std::printf("  (paper: x1=x2=x3=x4=1, x5=0)\n");
    } else {
        std::printf("status %d after %zu iterations\n",
                    static_cast<int>(res.verdict), res.iterations);
    }
    std::printf("facts:");
    for (const auto& t : res.techniques)
        std::printf(" %s=%zu", t.name.c_str(), t.facts);
    std::printf("\n");
    return 0;
}
