// Batch-solving throughput harness -- seeds the BENCH_* trajectory.
//
// Generates a batch of planted-solution random quadratic ANF systems, runs
// them (a) sequentially through one Engine per instance and (b) through
// BatchEngine::solve_all on a thread pool, then reports wall-clock,
// speedup, and whether the parallel results are bit-identical to the
// sequential ones (they must be: the determinism contract of the batch
// runtime, enforced here with a nonzero exit code).
//
// Output is machine-readable JSON, printed to stdout and written to
// BENCH_batch.json (override the path with BENCH_JSON_OUT). Knobs:
// BENCH_INSTANCES (20), BENCH_THREADS (0 = hardware concurrency),
// BENCH_VARS (40), BENCH_EQS (56), BENCH_SEED (1). Requests beyond the
// core count are clamped by BatchEngine::threads_for (recorded as
// "threads_clamped"). Speedup scales with available cores; on a 1-core
// container it is ~1 by construction.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bosphorus/bosphorus.h"
#include "cnfgen/generators.h"
#include "runtime/thread_pool.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace bosphorus;

namespace {

size_t env_or(const char* name, size_t fallback) {
    if (const char* v = std::getenv(name)) return std::strtoul(v, nullptr, 10);
    return fallback;
}

Problem planted_instance(size_t num_vars, size_t num_eqs, Rng& rng) {
    cnfgen::PlantedAnf inst =
        cnfgen::planted_quadratic_anf(num_vars, num_eqs, 3, 2, rng);
    return Problem::from_anf(std::move(inst.polys), inst.num_vars);
}

EngineConfig bench_config(uint64_t seed) {
    EngineConfig cfg;
    cfg.xl.m_budget = 18;
    cfg.elimlin.m_budget = 18;
    cfg.sat_conflicts_start = 2'000;
    cfg.sat_conflicts_max = 20'000;
    cfg.sat_conflicts_step = 2'000;
    cfg.max_iterations = 12;
    cfg.time_budget_s = 30.0;
    cfg.seed = seed;
    return cfg;
}

bool reports_identical(const Report& a, const Report& b) {
    return a.verdict == b.verdict && a.interrupted == b.interrupted &&
           a.timed_out == b.timed_out && a.solution == b.solution &&
           a.processed_anf == b.processed_anf &&
           a.iterations == b.iterations && a.num_vars == b.num_vars &&
           a.total_facts() == b.total_facts();
}

}  // namespace

int main() {
    const size_t instances = env_or("BENCH_INSTANCES", 20);
    const size_t threads_requested = env_or("BENCH_THREADS", 0);
    const size_t num_vars = env_or("BENCH_VARS", 40);
    const size_t num_eqs = env_or("BENCH_EQS", 56);
    const auto seed = static_cast<uint64_t>(env_or("BENCH_SEED", 1));
    const char* json_path = std::getenv("BENCH_JSON_OUT");
    if (!json_path) json_path = "BENCH_batch.json";

    Rng gen_rng(seed * 0x5DEECE66DULL + 11);
    std::vector<Problem> problems;
    problems.reserve(instances);
    for (size_t i = 0; i < instances; ++i)
        problems.push_back(planted_instance(num_vars, num_eqs, gen_rng));

    const EngineConfig cfg = bench_config(seed);

    // (a) Sequential reference: one private Engine per instance, in order.
    Timer seq_timer;
    std::vector<Report> sequential;
    sequential.reserve(instances);
    for (const Problem& p : problems) {
        Engine engine(cfg);
        Result<Report> r = engine.run(p);
        if (!r.ok()) {
            std::fprintf(stderr, "sequential run failed: %s\n",
                         r.status().to_string().c_str());
            return 1;
        }
        sequential.push_back(std::move(*r));
    }
    const double seq_s = seq_timer.seconds();

    // (b) The batch runtime. threads_for owns the sizing policy: 0 means
    // hardware concurrency, and requests beyond the core count are
    // clamped rather than oversubscribing the box.
    const unsigned threads_used = BatchEngine::threads_for(
        instances, static_cast<unsigned>(threads_requested));
    // threads_clamped records the HARDWARE clamp specifically (an explicit
    // request beyond the core count), not the never-more-workers-than-
    // instances cap, which is routine.
    const bool threads_clamped =
        threads_requested > runtime::ThreadPool::default_thread_count();
    Timer par_timer;
    BatchEngine batch(cfg);
    const std::vector<Result<Report>> parallel =
        batch.solve_all(problems, static_cast<unsigned>(threads_requested));
    const double par_s = par_timer.seconds();

    bool deterministic = true;
    size_t n_sat = 0, n_unsat = 0, n_unknown = 0;
    for (size_t i = 0; i < instances; ++i) {
        if (!parallel[i].ok() ||
            !reports_identical(sequential[i], *parallel[i])) {
            deterministic = false;
            std::fprintf(stderr, "instance %zu diverged from sequential\n", i);
        }
        switch (sequential[i].verdict) {
            case sat::Result::kSat: ++n_sat; break;
            case sat::Result::kUnsat: ++n_unsat; break;
            default: ++n_unknown; break;
        }
    }

    const double speedup = par_s > 0 ? seq_s / par_s : 0.0;
    char json[1024];
    std::snprintf(
        json, sizeof(json),
        "{\n"
        "  \"bench\": \"batch_throughput\",\n"
        "  \"instances\": %zu,\n"
        "  \"vars\": %zu,\n"
        "  \"equations\": %zu,\n"
        "  \"threads_requested\": %zu,\n"
        "  \"threads\": %u,\n"
        "  \"threads_clamped\": %s,\n"
        "  \"hardware_concurrency\": %u,\n"
        "  \"seed\": %llu,\n"
        "  \"sequential_s\": %.4f,\n"
        "  \"parallel_s\": %.4f,\n"
        "  \"speedup\": %.3f,\n"
        "  \"throughput_seq_per_s\": %.2f,\n"
        "  \"throughput_par_per_s\": %.2f,\n"
        "  \"deterministic\": %s,\n"
        "  \"verdicts\": {\"sat\": %zu, \"unsat\": %zu, \"unknown\": %zu}\n"
        "}\n",
        instances, num_vars, num_eqs, threads_requested, threads_used,
        threads_clamped ? "true" : "false",
        runtime::ThreadPool::default_thread_count(),
        static_cast<unsigned long long>(seed), seq_s, par_s, speedup,
        seq_s > 0 ? instances / seq_s : 0.0,
        par_s > 0 ? instances / par_s : 0.0,
        deterministic ? "true" : "false", n_sat, n_unsat, n_unknown);

    std::fputs(json, stdout);
    if (std::ofstream out{json_path}) out << json;
    else std::fprintf(stderr, "warning: cannot write %s\n", json_path);

    return deterministic ? 0 : 1;
}
