// Table II, Simon rows: round-reduced Simon32/64 key recovery in the
// SP/RC setting, classes Simon-[8,6], Simon-[9,7], Simon-[10,8]
// ((n plaintexts, r rounds), 50 instances each in the paper).
//
// Expected shape (paper): [8,6] is easy everywhere and Bosphorus only adds
// overhead; [9,7] is where Bosphorus rescues the weak solver (MiniSat w/o:
// 22/50, w: 50/50); [10,8] is hard for MiniSat even with help.
#include "table2_common.h"

#include "crypto/simon.h"

using namespace bosphorus;
using bench::AnfInstance;
using bench::BenchScale;

int main() {
    const BenchScale scale = BenchScale::from_env(2, 6.0);
    bench::print_header("Table II -- Simon32/64 rows", scale);

    const std::pair<unsigned, unsigned> classes[] = {{8, 6}, {9, 7}, {10, 8}};
    for (const auto& [n, r] : classes) {
        const std::string name =
            "Simon-[" + std::to_string(n) + "," + std::to_string(r) + "]";
        bench::run_class_row(
            name,
            [&, n = n, r = r](size_t i) {
                const crypto::Simon32 simon(r);
                Rng rng(scale.seed * 1000 + i * 13 + n + r);
                auto inst = simon.encode(n, rng);
                AnfInstance out;
                out.polys = std::move(inst.polys);
                out.num_vars = inst.num_vars;
                return out;
            },
            scale);
    }
    std::printf(
        "\npaper shape: easy [8,6] -> Bosphorus overhead visible; [9,7] -> "
        "Bosphorus turns timeouts into sub-second solves; [10,8] -> hard "
        "for the weak solver even with learning.\n");
    return 0;
}
