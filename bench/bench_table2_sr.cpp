// Table II, SR row: small-scale AES key recovery, the paper's SR-[1,4,4,8]
// class (500 instances of 1-round AES-128 with one (P, C) pair).
//
// Laptop scaling: the full SR(1,4,4,8) system (544 vars, ~1100 equations,
// 39 implicit quadratics per S-box) exceeds what our in-tree CDCL cracks in
// a seconds-scale timeout either way, so the harness sweeps an
// increasing-difficulty ladder of SR variants -- SR(1,2,2,4) (easy; shows
// pure Bosphorus overhead, like the paper's easy rows), SR(2,2,2,4) and
// SR(1,4,4,8) (the paper's own class, reported for completeness).
// BENCH_TIMEOUT / BENCH_INSTANCES rescale everything.
#include "table2_common.h"

#include "crypto/aes_small.h"

using namespace bosphorus;
using bench::AnfInstance;
using bench::BenchScale;

int main() {
    const BenchScale scale = BenchScale::from_env(2, 6.0);
    bench::print_header("Table II -- small-scale AES (SR) rows", scale);

    struct ClassDef {
        const char* name;
        crypto::SmallScaleAes::Params params;
    };
    const ClassDef classes[] = {
        {"SR-[1,2,2,4]", {1, 2, 2, 4}},  // easy: shows pure overhead
        {"SR-[3,2,2,4]", {3, 2, 2, 4}},  // medium: learning starts to pay
        {"SR-[1,4,4,8]", {1, 4, 4, 8}},  // the paper's class
    };

    for (const auto& cls : classes) {
        const crypto::SmallScaleAes aes(cls.params);
        bench::run_class_row(
            cls.name,
            [&](size_t i) {
                Rng rng(scale.seed * 777 + i);
                auto inst = aes.random_instance(rng);
                AnfInstance out;
                out.polys = std::move(inst.polys);
                out.num_vars = inst.num_vars;
                return out;
            },
            scale);
    }
    std::printf(
        "\npaper shape: SR-[1,4,4,8] is where Bosphorus rescues MiniSat "
        "(89 -> 489 of 500 solved) while barely moving Lingeling/CMS5; at "
        "laptop timeouts the full class times out for every in-tree "
        "configuration, and the scaled-down classes show the easy-instance "
        "overhead shape.\n");
    return 0;
}
