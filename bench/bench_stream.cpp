// Streaming-preprocessor benchmark: generate a DIMACS file several times
// larger than the configured memory budget, push it through
// bosphorus::StreamPreprocessor, and report throughput and memory
// behaviour.
//
// Checks, enforced with a nonzero exit code:
//  * the pipeline's own accounted peak stays within the budget (the hard
//    out-of-core guarantee; CI additionally runs the CLI under a ulimit
//    address-space cap to bound *total* RSS);
//  * the input really is at least 4x the budget (otherwise the run proves
//    nothing);
//  * on small instances, the streamed output is equisatisfiable with the
//    input: a planted-SAT mixed instance must stay SAT and an UNSAT XOR
//    cycle must stay UNSAT under the registered "cms" back-end.
// Wall-clock throughput is reported, not enforced: timing noise on a
// loaded CI box must not fail the build.
//
// Output is machine-readable JSON, printed to stdout and written to
// BENCH_stream.json (override with BENCH_JSON_OUT). Knobs:
// BENCH_STREAM_VARS (150000), BENCH_STREAM_CLAUSES (1700000),
// BENCH_BUDGET_MB (8), BENCH_SEED (1).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "bosphorus/bosphorus.h"
#include "cnfgen/generators.h"
#include "sat/dimacs.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace bosphorus;

namespace {

size_t env_or(const char* name, size_t fallback) {
    if (const char* v = std::getenv(name)) return std::strtoul(v, nullptr, 10);
    return fallback;
}

/// Solve a DIMACS text with the registered cms-like back-end.
sat::Result solve_text(const std::string& text) {
    std::istringstream in(text);
    const sat::Cnf cnf = sat::read_dimacs(in);
    const auto so = sat::solve_cnf_with(cnf, "cms", 120.0);
    return so.ok() ? so->result : sat::Result::kUnknown;
}

/// Equisatisfiability gate on one in-memory instance; returns true if the
/// streamed output solves to `expected`.
bool equisat_case(const char* name, const std::string& dimacs,
                  sat::Result expected, uint64_t budget) {
    StreamPreprocessConfig cfg;
    cfg.memory_budget_bytes = budget;
    StreamPreprocessor pp(cfg);
    std::string out_text;
    const auto stats = pp.run_text(dimacs, &out_text);
    if (!stats.ok()) {
        std::fprintf(stderr, "equisat %s: %s\n", name,
                     stats.status().to_string().c_str());
        return false;
    }
    const sat::Result got = stats->verdict == sat::Result::kUnsat
                                ? sat::Result::kUnsat
                                : solve_text(out_text);
    if (got != expected) {
        std::fprintf(stderr, "equisat %s: expected %d, got %d\n", name,
                     static_cast<int>(expected), static_cast<int>(got));
        return false;
    }
    return true;
}

}  // namespace

int main() {
    const uint64_t n_vars = env_or("BENCH_STREAM_VARS", 150000);
    const uint64_t n_clauses = env_or("BENCH_STREAM_CLAUSES", 1700000);
    const uint64_t budget_mb = env_or("BENCH_BUDGET_MB", 8);
    const uint64_t budget = budget_mb << 20;
    const auto seed = static_cast<uint64_t>(env_or("BENCH_SEED", 1));
    const char* json_path = std::getenv("BENCH_JSON_OUT");
    if (!json_path) json_path = "BENCH_stream.json";

    const std::string in_path = "bench_stream_input.tmp.cnf";
    const std::string out_path = "bench_stream_output.tmp.cnf";

    // --- generate the over-budget input (O(1) memory itself) --------------
    {
        cnfgen::StreamDimacs gen;
        gen.num_vars = n_vars;
        gen.num_clauses = n_clauses;
        Rng rng(seed);
        std::ofstream out(in_path, std::ios::binary);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n", in_path.c_str());
            return 1;
        }
        cnfgen::write_stream_dimacs(out, gen, rng);
    }

    // --- the streamed run --------------------------------------------------
    StreamPreprocessConfig cfg;
    cfg.memory_budget_bytes = budget;
    StreamPreprocessor pp(cfg);
    const Timer timer;
    const auto stats = pp.run(in_path, out_path);
    if (!stats.ok()) {
        std::fprintf(stderr, "stream run failed: %s\n",
                     stats.status().to_string().c_str());
        return 1;
    }
    const double wall_s = timer.seconds();
    const double mb_in = static_cast<double>(stats->bytes_in) / (1u << 20);
    const double throughput = wall_s > 0 ? mb_in / wall_s : 0.0;
    std::printf("%s\n", stream_summary_line(*stats).c_str());

    bool ok = true;
    if (stats->bytes_in < 4 * budget) {
        std::fprintf(stderr,
                     "input too small: %llu bytes < 4x budget (%llu)\n",
                     static_cast<unsigned long long>(stats->bytes_in),
                     static_cast<unsigned long long>(4 * budget));
        ok = false;
    }
    if (stats->peak_accounted_bytes > budget) {
        std::fprintf(stderr,
                     "accounted peak %llu exceeds budget %llu\n",
                     static_cast<unsigned long long>(
                         stats->peak_accounted_bytes),
                     static_cast<unsigned long long>(budget));
        ok = false;
    }

    // --- small-instance equisatisfiability gates ---------------------------
    bool equisat_sat = false, equisat_unsat = false;
    {
        cnfgen::StreamDimacs gen;
        gen.num_vars = 150;
        gen.num_clauses = 900;
        Rng rng(seed + 17);
        std::ostringstream text;
        cnfgen::write_stream_dimacs(text, gen, rng);
        equisat_sat = equisat_case("planted-sat", text.str(),
                                   sat::Result::kSat, 1u << 20);
    }
    {
        Rng rng(seed + 31);
        const sat::Cnf cnf = cnfgen::xor_cycle(30, /*satisfiable=*/false, rng);
        std::ostringstream text;
        sat::write_dimacs(text, cnf);
        equisat_unsat = equisat_case("xorcycle-unsat", text.str(),
                                     sat::Result::kUnsat, 1u << 20);
    }
    ok = ok && equisat_sat && equisat_unsat;

    // --- JSON ---------------------------------------------------------------
    std::ostringstream json;
    json << "{\n"
         << "  \"bench\": \"stream\",\n"
         << "  \"vars\": " << n_vars << ",\n"
         << "  \"clauses\": " << n_clauses << ",\n"
         << "  \"budget_bytes\": " << budget << ",\n"
         << "  \"bytes_in\": " << stats->bytes_in << ",\n"
         << "  \"bytes_out\": " << stats->bytes_out << ",\n"
         << "  \"seconds\": " << stats->seconds << ",\n"
         << "  \"throughput_mb_per_s\": " << throughput << ",\n"
         << "  \"peak_rss_bytes\": " << stats->peak_rss_bytes << ",\n"
         << "  \"peak_accounted_bytes\": " << stats->peak_accounted_bytes
         << ",\n"
         << "  \"clauses_in\": " << stats->clauses_in << ",\n"
         << "  \"clauses_out\": " << stats->clauses_out << ",\n"
         << "  \"xors_recovered\": " << stats->xors_recovered << ",\n"
         << "  \"xors_out\": " << stats->xors_out << ",\n"
         << "  \"units_fixed\": " << stats->units_fixed << ",\n"
         << "  \"pure_fixed\": " << stats->pure_fixed << ",\n"
         << "  \"equivs_merged\": " << stats->equivs_merged << ",\n"
         << "  \"bve_eliminated\": " << stats->bve_eliminated << ",\n"
         << "  \"windows\": " << stats->windows << ",\n"
         << "  \"equisat_sat_ok\": " << (equisat_sat ? "true" : "false")
         << ",\n"
         << "  \"equisat_unsat_ok\": " << (equisat_unsat ? "true" : "false")
         << ",\n"
         << "  \"within_budget\": "
         << (stats->peak_accounted_bytes <= budget ? "true" : "false") << "\n"
         << "}\n";
    std::fputs(json.str().c_str(), stdout);
    std::ofstream jf(json_path);
    jf << json.str();

    std::remove(in_path.c_str());
    std::remove(out_path.c_str());
    return ok ? 0 : 1;
}
