// Reproduces Fig. 2 / Fig. 3: ANF -> CNF conversion sizes, Karnaugh-map
// path vs Tseitin path, on the paper's example polynomial and on a sweep of
// random polynomials of growing variable count.
#include <cstdio>

#include "anf/anf_parser.h"
#include "core/anf_to_cnf.h"
#include "util/rng.h"

using namespace bosphorus;

namespace {

core::Anf2CnfResult convert(const anf::Polynomial& p, size_t nv, unsigned k) {
    core::Anf2CnfConfig cfg;
    cfg.karnaugh_k = k;
    cfg.xor_cut = 16;  // no cutting: isolate the two conversion paths
    return core::anf_to_cnf({p}, nv, cfg);
}

}  // namespace

int main() {
    std::printf("=== Fig. 2: Karnaugh vs Tseitin conversion ===\n");
    const auto p = anf::parse_polynomial("x1*x3 + x1 + x2 + x4 + 1");
    const auto karnaugh = convert(p, 4, 8);
    const auto tseitin = convert(p, 4, 2);
    std::printf("polynomial: %s\n", p.to_string().c_str());
    std::printf("  karnaugh path: %zu clauses, %zu aux vars (paper: 6, 0)\n",
                karnaugh.cnf.clauses.size(), karnaugh.cnf.num_vars - 4);
    std::printf("  tseitin path:  %zu clauses, %zu aux vars (paper: 11, 1)\n",
                tseitin.cnf.clauses.size(), tseitin.cnf.num_vars - 4);

    std::printf("\nsweep: random degree-2 polynomials, clause counts by "
                "conversion path\n");
    std::printf("%-6s %-10s %-18s %-18s\n", "vars", "monomials",
                "karnaugh clauses", "tseitin clauses");
    Rng rng(7);
    for (unsigned nv = 3; nv <= 8; ++nv) {
        size_t k_clauses = 0, t_clauses = 0, monos = 0;
        const int reps = 20;
        for (int rep = 0; rep < reps; ++rep) {
            // Random polynomial touching exactly nv variables.
            std::vector<anf::Monomial> ms;
            for (unsigned v = 0; v + 1 < nv; v += 2)
                ms.push_back(anf::Monomial(std::vector<anf::Var>{v, v + 1}));
            for (unsigned v = 0; v < nv; ++v)
                if (rng.coin()) ms.push_back(anf::Monomial(v));
            if (rng.coin()) ms.push_back(anf::Monomial());
            const anf::Polynomial poly(std::move(ms));
            if (poly.is_zero()) continue;
            monos += poly.size();
            k_clauses += convert(poly, nv, 8).cnf.clauses.size();
            t_clauses += convert(poly, nv, 2).cnf.clauses.size();
        }
        std::printf("%-6u %-10.1f %-18.1f %-18.1f\n", nv,
                    static_cast<double>(monos) / reps,
                    static_cast<double>(k_clauses) / reps,
                    static_cast<double>(t_clauses) / reps);
    }
    std::printf("\nexpected shape: Karnaugh stays compact at low variable "
                "counts; Tseitin pays auxiliary AND-gate clauses plus "
                "2^(l-1) XOR clauses but scales past K variables.\n");
    return 0;
}
