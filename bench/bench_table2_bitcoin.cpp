// Table II, Bitcoin rows: weakened Bitcoin nonce finding, classes
// Bitcoin-[10], Bitcoin-[15], Bitcoin-[20] (k leading zero bits of a
// (round-reduced) SHA-256 digest; 50 instances each in the paper).
//
// Laptop scaling: the compression runs BENCH_SHA_ROUNDS rounds (default 16;
// the paper runs all 64 -- set BENCH_SHA_ROUNDS=64 to match, with a larger
// BENCH_TIMEOUT). Expected shape (paper): Bosphorus does NOT help here --
// its overhead is visible at k = 10/15 and washes out at k = 20.
#include "table2_common.h"

#include "crypto/sha256.h"

using namespace bosphorus;
using bench::AnfInstance;
using bench::BenchScale;

int main() {
    const BenchScale scale = BenchScale::from_env(2, 6.0);
    unsigned rounds = 16;
    if (const char* v = std::getenv("BENCH_SHA_ROUNDS"))
        rounds = std::strtoul(v, nullptr, 10);

    bench::print_header("Table II -- Bitcoin nonce-finding rows", scale);
    std::printf("SHA-256 rounds: %u (paper: 64)\n", rounds);

    for (const unsigned k : {10u, 15u, 20u}) {
        const std::string name = "Bitcoin-[" + std::to_string(k) + "]";
        bench::run_class_row(
            name,
            [&, k](size_t i) {
                Rng rng(scale.seed * 31 + i * 7 + k);
                auto inst = crypto::encode_bitcoin_nonce(k, rounds, rng);
                AnfInstance out;
                out.polys = std::move(inst.polys);
                out.num_vars = inst.num_vars;
                return out;
            },
            scale);
    }
    std::printf(
        "\npaper shape: plain solving wins at k = 10/15 (Bosphorus "
        "overhead, PAR-2 4->23 and 146->171); at k = 20 the overhead "
        "diminishes relative to instance hardness.\n");
    return 0;
}
