// Reproduces Table I: the XL worked example on {x1x2 + x1 + 1, x2x3 + x3}.
//
// Prints (a) the degree-1 expanded linearised system and (b) the system
// after Gauss-Jordan elimination, then the facts Bosphorus retains --
// expected: x1 + 1, x2, x3 (the last three rows of Table I(b)).
#include <cstdio>

#include "anf/anf_parser.h"
#include "core/linearize.h"
#include "core/xl.h"

using namespace bosphorus;

namespace {

void print_matrix(const core::Linearization& lin, const char* title) {
    std::printf("%s\n", title);
    std::printf("%-12s", "");
    for (const auto& m : lin.col_monomial) {
        std::string s;
        if (m.is_one()) {
            s = "1";
        } else {
            for (anf::Var v : m.vars()) {
                if (!s.empty()) s += "*";
                s += "x" + std::to_string(v + 1);
            }
        }
        std::printf("%-9s", s.c_str());
    }
    std::printf("\n");
    for (size_t r = 0; r < lin.rows(); ++r) {
        if (lin.matrix.row_is_zero(r)) continue;
        std::printf("  row %-5zu ", r);
        for (size_t c = 0; c < lin.cols(); ++c)
            std::printf("%-9s", lin.matrix.get(r, c) ? "1" : "");
        std::printf("\n");
    }
}

}  // namespace

int main() {
    std::printf("=== Table I: eXtended Linearization worked example ===\n");
    const auto sys =
        anf::parse_system_from_string("x1*x2 + x1 + 1\nx2*x3 + x3\n");

    // Expand by all degree-1 monomial multipliers, as in Table I(a).
    std::vector<anf::Polynomial> expanded = sys.polynomials;
    for (const auto& p : sys.polynomials) {
        for (anf::Var v = 0; v < 3; ++v) {
            const auto prod = p * anf::Monomial(v);
            if (!prod.is_zero()) expanded.push_back(prod);
        }
    }
    core::Linearization lin = core::linearize(expanded);
    print_matrix(lin, "(a) expansion by degree-1 monomials:");

    lin.matrix.rref();
    print_matrix(lin, "\n(b) after Gauss-Jordan elimination:");

    const auto facts = core::extract_facts(lin);
    std::printf("\nretained facts (paper: x1 + 1, x2, x3):\n");
    for (const auto& f : facts) std::printf("  %s = 0\n", f.to_string().c_str());

    // The same result through the public XL entry point.
    core::XlConfig cfg;
    cfg.degree = 1;
    cfg.m_budget = 16;
    Rng rng(1);
    core::XlStats stats;
    const auto xl_facts = core::run_xl(sys.polynomials, cfg, rng, &stats);
    std::printf("\nrun_xl: %zu sampled, %zu expanded rows, %zu columns, rank "
                "%zu, %zu facts\n",
                stats.sampled_equations, stats.expanded_rows, stats.columns,
                stats.rank, xl_facts.size());
    return 0;
}
