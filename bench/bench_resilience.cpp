// Resilience-layer benchmark: what does wrapping the in-process CMS
// backend in `resilient:` cost when nothing goes wrong, and what does a
// verdict cost when 30% of attempts are shot down by the fault injector?
//
// Three passes over the same random 3-SAT instances (phase-transition
// ratio, so both verdicts occur):
//  * bare        -- plain "cms", the baseline;
//  * resilient   -- "resilient:cms,retries=2", no faults armed;
//  * crash-plan  -- same spec with a deep retry budget, under an armed
//                   "backend-crash=0.3@64" plan.
//
// Checks, enforced with a nonzero exit code:
//  * verdicts are bit-identical between bare and resilient (no faults);
//  * verdicts still match under the crash plan (the @64 cap guarantees
//    the retry budget outlasts the fault budget);
//  * resilient overhead with no faults armed is <= BENCH_OVERHEAD_GATE
//    (default 1.05) of the bare wall-clock, best-of-BENCH_REPS totals.
//
// Output is machine-readable JSON, printed to stdout and written to
// BENCH_resilience.json (override with BENCH_JSON_OUT). Knobs:
// BENCH_INSTANCES (12), BENCH_VARS (90), BENCH_REPS (3), BENCH_SEED (1),
// BENCH_TIMEOUT (30, per-solve seconds), BENCH_OVERHEAD_GATE (1.05).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bosphorus/bosphorus.h"
#include "bosphorus/sat_backend.h"
#include "util/fault.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace bosphorus;

namespace {

size_t env_or(const char* name, size_t fallback) {
    if (const char* v = std::getenv(name)) return std::strtoul(v, nullptr, 10);
    return fallback;
}

double env_or_d(const char* name, double fallback) {
    if (const char* v = std::getenv(name)) return std::strtod(v, nullptr);
    return fallback;
}

/// A random 3-SAT instance at the phase-transition ratio (4.26), as the
/// clause list alone: both passes load the identical formula.
struct Instance {
    size_t n_vars = 0;
    std::vector<std::vector<sat::Lit>> clauses;
};

Instance make_instance(size_t n_vars, Rng& rng) {
    Instance inst;
    inst.n_vars = n_vars;
    const size_t n_clauses = (n_vars * 426 + 50) / 100;
    for (size_t c = 0; c < n_clauses; ++c) {
        std::vector<sat::Lit> cl;
        while (cl.size() < 3) {
            const sat::Var v = static_cast<sat::Var>(rng.below(n_vars));
            bool fresh = true;
            for (const sat::Lit l : cl)
                if (l.var() == v) fresh = false;
            if (fresh) cl.push_back(sat::mk_lit(v, rng.below(2) == 0));
        }
        inst.clauses.push_back(std::move(cl));
    }
    return inst;
}

const char* verdict_name(sat::Result r) {
    if (r == sat::Result::kSat) return "sat";
    if (r == sat::Result::kUnsat) return "unsat";
    return "unknown";
}

/// One cold solve of `inst` on a fresh backend built from `spec`.
sat::Result solve_once(const std::string& spec, const Instance& inst,
                       double timeout_s, double* seconds) {
    auto made = sat::BackendRegistry::global().create(sat::SolverSpec{spec});
    if (!made.ok()) {
        std::fprintf(stderr, "FATAL: cannot create backend '%s': %s\n",
                     spec.c_str(), made.status().to_string().c_str());
        std::exit(1);
    }
    sat::SolverBackend& b = **made;
    b.ensure_vars(inst.n_vars);
    for (const auto& cl : inst.clauses) b.add_clause(cl);
    const Timer t;
    const sat::Result r = b.solve(-1, timeout_s);
    *seconds = t.seconds();
    return r;
}

/// Best-of-`reps` total wall-clock of `spec` across every instance;
/// verdicts from the final rep land in `verdicts` / `times`.
double run_pass(const std::string& spec,
                const std::vector<Instance>& instances, size_t reps,
                double timeout_s, std::vector<sat::Result>* verdicts,
                std::vector<double>* times) {
    double best = -1.0;
    for (size_t rep = 0; rep < reps; ++rep) {
        verdicts->clear();
        times->clear();
        double total = 0.0;
        for (const auto& inst : instances) {
            double s = 0.0;
            verdicts->push_back(solve_once(spec, inst, timeout_s, &s));
            times->push_back(s);
            total += s;
        }
        if (best < 0.0 || total < best) best = total;
    }
    return best;
}

}  // namespace

int main() {
    const size_t n_instances = env_or("BENCH_INSTANCES", 12);
    const size_t n_vars = env_or("BENCH_VARS", 90);
    const size_t reps = env_or("BENCH_REPS", 3);
    const uint64_t seed = env_or("BENCH_SEED", 1);
    const double timeout_s = env_or_d("BENCH_TIMEOUT", 30.0);
    const double gate = env_or_d("BENCH_OVERHEAD_GATE", 1.05);

    Rng rng(seed);
    std::vector<Instance> instances;
    for (size_t i = 0; i < n_instances; ++i)
        instances.push_back(make_instance(n_vars, rng));

    sat::BackendRegistry::global().health().reset();

    std::vector<sat::Result> bare_v, res_v, crash_v;
    std::vector<double> bare_t, res_t, crash_t;
    const double bare_total =
        run_pass("cms", instances, reps, timeout_s, &bare_v, &bare_t);
    const double res_total = run_pass("resilient:cms,retries=2", instances,
                                      reps, timeout_s, &res_v, &res_t);

    // Time-to-verdict with 30% of in-process attempts injected as
    // crashes. The @64 cap bounds total faults below the retry budget
    // (21 attempts/instance), so every instance still reaches a verdict.
    const std::string crash_plan =
        "backend-crash=0.3@64,seed=" + std::to_string(seed);
    const auto& counters = sat::resilience_counters();
    const uint64_t retries_before = counters.retries.load();
    double crash_total = 0.0;
    {
        fault::ScopedFaultPlan plan(crash_plan);
        if (!plan.status().ok()) {
            std::fprintf(stderr, "FATAL: cannot arm '%s': %s\n",
                         crash_plan.c_str(),
                         plan.status().to_string().c_str());
            return 1;
        }
        crash_total =
            run_pass("resilient:cms,retries=20,backoff=0.001", instances, 1,
                     timeout_s, &crash_v, &crash_t);
    }
    const uint64_t crash_retries = counters.retries.load() - retries_before;
    sat::BackendRegistry::global().health().reset();

    bool verdicts_equal = true, crash_equal = true;
    size_t n_sat = 0;
    for (size_t i = 0; i < instances.size(); ++i) {
        if (bare_v[i] != res_v[i]) verdicts_equal = false;
        if (bare_v[i] != crash_v[i]) crash_equal = false;
        if (bare_v[i] == sat::Result::kSat) ++n_sat;
    }
    const double overhead =
        bare_total > 0.0 ? res_total / bare_total : 1.0;
    const bool overhead_ok = overhead <= gate;

    std::string json = "{\n";
    char buf[512];
    std::snprintf(buf, sizeof buf,
                  "  \"bench\": \"resilience\",\n"
                  "  \"instances\": %zu,\n  \"vars\": %zu,\n"
                  "  \"sat_instances\": %zu,\n  \"reps\": %zu,\n"
                  "  \"seed\": %llu,\n  \"bare_total_s\": %.4f,\n"
                  "  \"resilient_total_s\": %.4f,\n"
                  "  \"overhead_ratio\": %.4f,\n"
                  "  \"overhead_gate\": %.2f,\n"
                  "  \"overhead_ok\": %s,\n"
                  "  \"verdicts_equivalent\": %s,\n",
                  n_instances, n_vars, n_sat, reps,
                  static_cast<unsigned long long>(seed), bare_total,
                  res_total, overhead, gate, overhead_ok ? "true" : "false",
                  verdicts_equal ? "true" : "false");
    json += buf;
    std::snprintf(buf, sizeof buf,
                  "  \"crash_plan\": {\"plan\": \"%s\", \"total_s\": %.4f, "
                  "\"retries\": %llu, \"verdicts_equivalent\": %s},\n",
                  crash_plan.c_str(), crash_total,
                  static_cast<unsigned long long>(crash_retries),
                  crash_equal ? "true" : "false");
    json += buf;
    json += "  \"rows\": [\n";
    for (size_t i = 0; i < instances.size(); ++i) {
        std::snprintf(
            buf, sizeof buf,
            "    {\"name\": \"3sat-%zux#%zu\", \"verdict\": \"%s\", "
            "\"bare_s\": %.4f, \"resilient_s\": %.4f, \"crash_s\": %.4f}%s\n",
            n_vars, i, verdict_name(bare_v[i]), bare_t[i], res_t[i],
            crash_t[i], i + 1 < instances.size() ? "," : "");
        json += buf;
    }
    json += "  ]\n}\n";

    std::fputs(json.c_str(), stdout);
    const char* out_path = std::getenv("BENCH_JSON_OUT");
    std::ofstream out(out_path ? out_path : "BENCH_resilience.json");
    out << json;

    if (!verdicts_equal) {
        std::fprintf(stderr, "FAIL: resilient verdicts diverge from bare\n");
        return 1;
    }
    if (!crash_equal) {
        std::fprintf(stderr,
                     "FAIL: verdicts diverge under the crash plan\n");
        return 1;
    }
    if (!overhead_ok) {
        std::fprintf(stderr, "FAIL: overhead %.4f exceeds gate %.2f\n",
                     overhead, gate);
        return 1;
    }
    return 0;
}
