// Table II, SAT-2017 rows: CNF instances through the Bosphorus-as-CNF-
// preprocessor pipeline (section III-D).
//
// The competition set is not redistributable, so the in-tree generated
// suite (random 3-SAT at the threshold, pigeonhole, XOR cycles, graph
// colouring -- see src/cnfgen/) stands in. Like the paper we report an
// "all instances" row pair and a "hard subset" row pair (instances the
// plain MiniSat-like solver cannot finish in half the timeout, mirroring
// the paper's 2,500 s proxy-difficulty split of 310 -> 219 instances).
//
// Expected shape (paper): Bosphorus helps most on UNSAT instances and for
// the GJE-enabled solver (CMS5: 89+63 -> 98+77 solved).
#include <cstdio>
#include <string>
#include <vector>

#include "cnfgen/generators.h"
#include "table2_common.h"

using namespace bosphorus;
using bench::BenchScale;

namespace {

struct Row {
    double par2 = 0.0;
    size_t sat = 0, unsat = 0;
};

Row run(const std::vector<const sat::Cnf*>& instances, sat::SolverKind kind,
        bool with, const BenchScale& scale) {
    Row row;
    std::vector<SolveOutcome> outcomes;
    for (const sat::Cnf* cnf : instances) {
        const Result<SolveOutcome> out = solve(
            Problem::from_cnf(*cnf), bench::make_config(kind, with, scale));
        if (!out.ok()) {
            // Score the failure as unsolved so it penalises PAR-2.
            std::fprintf(stderr, "c solve error: %s\n",
                         out.status().to_string().c_str());
            outcomes.emplace_back();
            continue;
        }
        outcomes.push_back(*out);
        if (out->result == sat::Result::kSat) ++row.sat;
        if (out->result == sat::Result::kUnsat) ++row.unsat;
    }
    row.par2 = par2_score(outcomes, scale.timeout_s);
    return row;
}

}  // namespace

int main() {
    const BenchScale scale = BenchScale::from_env(1, 5.0);
    unsigned suite_scale = 1;
    if (const char* v = std::getenv("BENCH_SUITE_SCALE"))
        suite_scale = std::strtoul(v, nullptr, 10);

    const auto suite = cnfgen::sat2017_substitute_suite(suite_scale,
                                                        scale.seed);
    std::printf("=== Table II -- SAT-2017 substitute rows ===\n");
    std::printf("suite: %zu generated instances (families:", suite.size());
    std::string last;
    for (const auto& inst : suite) {
        if (inst.family != last) {
            std::printf(" %s", inst.family.c_str());
            last = inst.family;
        }
    }
    std::printf("), timeout %.0fs\n", scale.timeout_s);

    std::vector<const sat::Cnf*> all;
    for (const auto& inst : suite) all.push_back(&inst.cnf);

    // Hard subset: proxy difficulty = plain minisat-like runtime, as in the
    // paper (they keep instances needing > 2,500 s; we keep > timeout / 2).
    std::vector<const sat::Cnf*> hard;
    for (const auto& inst : suite) {
        const auto probe = sat::solve_cnf(inst.cnf,
                                          sat::SolverKind::kMinisatLike,
                                          scale.timeout_s / 2);
        if (probe.result == sat::Result::kUnknown) hard.push_back(&inst.cnf);
    }
    std::printf("hard subset (minisat-like > %.0fs): %zu instances\n\n",
                scale.timeout_s / 2, hard.size());

    std::printf("%-16s %-3s  %-15s  %-15s  %-15s\n", "set", "",
                "minisat-like", "lingeling-like", "cms-like");
    constexpr sat::SolverKind kKinds[] = {sat::SolverKind::kMinisatLike,
                                          sat::SolverKind::kLingelingLike,
                                          sat::SolverKind::kCmsLike};
    struct Set {
        const char* name;
        const std::vector<const sat::Cnf*>* instances;
    };
    const Set sets[] = {{"SAT-sub (all)", &all}, {"SAT-sub (hard)", &hard}};
    for (const auto& set : sets) {
        for (const bool with : {false, true}) {
            std::printf("%-16s %-3s", with ? "" : set.name, with ? "w" : "w/o");
            for (const auto kind : kKinds) {
                const Row row = run(*set.instances, kind, with, scale);
                std::printf("  %8.1f (%zu+%zu)", row.par2, row.sat, row.unsat);
            }
            std::printf("\n");
        }
    }
    std::printf(
        "\npaper shape: learning helps most on UNSAT instances and for the "
        "GJE-enabled (cms-like) solver; XOR-rich families are decided "
        "inside Bosphorus via GF(2) elimination.\n");
    return 0;
}
