// Ablation study over Bosphorus's parameters (section IV discusses running
// with different parameters to understand when the tool helps).
//
// On a fixed Simon-[9,7] instance (the class where Bosphorus matters most)
// we sweep: the learning steps enabled (XL / ElimLin / SAT), the sampling
// budget M, the XL degree D, the Karnaugh limit K, the XOR-cut length L,
// and the conflict budget C. Reported: facts learnt, loop time, and
// end-to-end solve time with the CMS-like back end.
#include <cstdio>
#include <cstdlib>

#include "bosphorus/bosphorus.h"
#include "crypto/simon.h"

using namespace bosphorus;

namespace {

struct AblationResult {
    size_t facts = 0;
    double loop_s = 0.0;
    double total_s = 0.0;
    bool solved = false;
};

AblationResult run(const Problem& problem, const EngineConfig& opt,
                   double timeout) {
    SolveConfig cfg;
    cfg.solver = sat::SolverKind::kCmsLike;
    cfg.preprocess = true;
    cfg.engine = opt;
    cfg.timeout_s = timeout;
    cfg.engine_budget_s = timeout * 0.6;
    const Result<SolveOutcome> out = solve(problem, cfg);
    AblationResult res;
    if (!out.ok()) return res;
    res.loop_s = out->engine_seconds;
    res.total_s = out->seconds;
    res.solved = out->result != sat::Result::kUnknown;
    return res;
}

EngineConfig base_options() {
    EngineConfig opt;
    opt.xl.m_budget = 20;
    opt.elimlin.m_budget = 20;
    opt.sat_conflicts_start = 10'000;
    opt.max_iterations = 16;
    return opt;
}

}  // namespace

int main() {
    double timeout = 6.0;
    if (const char* v = std::getenv("BENCH_TIMEOUT"))
        timeout = std::strtod(v, nullptr);

    const crypto::Simon32 simon(7);
    Rng rng(4242);
    const auto inst = simon.encode(9, rng);
    std::printf("=== ablation on Simon-[9,7] (%zu eqs, %zu vars), cms-like "
                "back end, timeout %.0fs ===\n",
                inst.polys.size(), inst.num_vars, timeout);
    std::printf("%-34s %-8s %-10s %-8s\n", "configuration", "loop(s)",
                "total(s)", "solved");

    const Problem problem = Problem::from_anf(inst.polys, inst.num_vars);
    auto report = [&](const char* name, const EngineConfig& opt) {
        const auto r = run(problem, opt, timeout);
        std::printf("%-34s %-8.2f %-10.2f %-8s\n", name, r.loop_s, r.total_s,
                    r.solved ? "yes" : "NO");
    };

    report("full loop (XL+ElimLin+SAT)", base_options());
    {
        auto o = base_options();
        o.use_xl = false;
        report("  - without XL", o);
    }
    {
        auto o = base_options();
        o.use_elimlin = false;
        report("  - without ElimLin", o);
    }
    {
        auto o = base_options();
        o.use_sat = false;
        report("  - without SAT step", o);
    }
    {
        auto o = base_options();
        o.use_xl = false;
        o.use_elimlin = false;
        report("  - SAT step only", o);
    }
    {
        auto o = base_options();
        o.use_groebner = true;
        report("  + Groebner (Buchberger/F4) step", o);
    }
    for (const unsigned m : {14u, 18u, 22u}) {
        auto o = base_options();
        o.xl.m_budget = m;
        o.elimlin.m_budget = m;
        char name[64];
        std::snprintf(name, sizeof name, "sampling budget M = %u", m);
        report(name, o);
    }
    for (const unsigned d : {2u}) {
        auto o = base_options();
        o.xl.degree = d;
        char name[64];
        std::snprintf(name, sizeof name, "XL degree D = %u", d);
        report(name, o);
    }
    for (const unsigned k : {2u, 4u, 8u}) {
        auto o = base_options();
        o.conv.karnaugh_k = k;
        char name[64];
        std::snprintf(name, sizeof name, "Karnaugh limit K = %u", k);
        report(name, o);
    }
    for (const unsigned l : {3u, 5u, 7u}) {
        auto o = base_options();
        o.conv.xor_cut = l;
        char name[64];
        std::snprintf(name, sizeof name, "XOR-cut length L = %u", l);
        report(name, o);
    }
    for (const int64_t c : {int64_t{1000}, int64_t{10'000}, int64_t{50'000}}) {
        auto o = base_options();
        o.sat_conflicts_start = c;
        char name[64];
        std::snprintf(name, sizeof name, "conflict budget C = %lld",
                      static_cast<long long>(c));
        report(name, o);
    }
    std::printf("\n%s\n", "reading: on Simon the linear-algebra steps carry the proof -- dropping ElimLin (or starving the sample budget, M = 14) loses the instance, while conversion parameters K/L and the conflict budget barely move the outcome.");
    return 0;
}
