// Shared harness for the Table II reproductions: run a class of instances
// through {MiniSat-like, Lingeling-like, CMS-like} x {w/o, w Bosphorus} and
// print PAR-2 scores with solved counts in the paper's layout.
//
// Built on the library facade: each instance is a bosphorus::Problem and
// each cell is a bosphorus::solve() call.
//
// Scaling: the paper uses a 5,000 s timeout and 50-500 instances per class;
// that is a multi-CPU-month budget. The harness defaults to laptop-scale
// (BENCH_INSTANCES, BENCH_TIMEOUT env vars override) -- per DESIGN.md the
// claim under test is the *shape* of the table (who wins, where Bosphorus's
// overhead shows), not the absolute numbers.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "bosphorus/bosphorus.h"

namespace bosphorus::bench {

struct BenchScale {
    size_t instances = 5;
    double timeout_s = 10.0;
    double bosphorus_budget_s = 4.0;
    uint64_t seed = 1;

    static BenchScale from_env(size_t default_instances = 5,
                               double default_timeout = 10.0) {
        BenchScale s;
        s.instances = default_instances;
        s.timeout_s = default_timeout;
        if (const char* v = std::getenv("BENCH_INSTANCES"))
            s.instances = std::strtoul(v, nullptr, 10);
        if (const char* v = std::getenv("BENCH_TIMEOUT"))
            s.timeout_s = std::strtod(v, nullptr);
        if (const char* v = std::getenv("BENCH_SEED"))
            s.seed = std::strtoull(v, nullptr, 10);
        s.bosphorus_budget_s = s.timeout_s * 0.4;
        return s;
    }
};

/// One ANF instance of a benchmark class.
struct AnfInstance {
    std::vector<anf::Polynomial> polys;
    size_t num_vars = 0;
    bool known_sat = true;  ///< generators produce satisfiable instances
};

/// Result cell: PAR-2 and solved counts, as in Table II.
struct Cell {
    double par2 = 0.0;
    size_t solved_sat = 0;
    size_t solved_unsat = 0;
};

inline SolveConfig make_config(sat::SolverKind kind, bool use_bosphorus,
                               const BenchScale& scale) {
    SolveConfig cfg;
    cfg.solver = kind;
    cfg.preprocess = use_bosphorus;
    cfg.timeout_s = scale.timeout_s;
    cfg.engine_budget_s = scale.bosphorus_budget_s;
    // Paper parameters scaled for laptop budgets: M = 20 instead of 30
    // (the 2^30 sampling budget targets the authors' large-memory nodes);
    // conflict schedule kept at the paper's values.
    cfg.engine.xl.m_budget = 20;
    cfg.engine.elimlin.m_budget = 20;
    cfg.engine.xl.degree = 1;
    cfg.engine.conv.karnaugh_k = 8;
    cfg.engine.conv.xor_cut = 5;
    cfg.engine.clause_cut = 5;
    cfg.engine.sat_conflicts_start = 10'000;
    cfg.engine.sat_conflicts_max = 100'000;
    cfg.engine.sat_conflicts_step = 10'000;
    cfg.engine.max_iterations = 16;
    return cfg;
}

/// Run one class row (w/o and w) across the three solvers and print the two
/// Table II rows.
inline void run_class_row(
    const std::string& name,
    const std::function<AnfInstance(size_t)>& make_instance,
    const BenchScale& scale) {
    constexpr sat::SolverKind kKinds[] = {sat::SolverKind::kMinisatLike,
                                          sat::SolverKind::kLingelingLike,
                                          sat::SolverKind::kCmsLike};
    // Generate instances once, as facade problems.
    std::vector<Problem> problems;
    for (size_t i = 0; i < scale.instances; ++i) {
        AnfInstance inst = make_instance(i);
        problems.push_back(
            Problem::from_anf(std::move(inst.polys), inst.num_vars));
    }

    for (const bool with : {false, true}) {
        std::printf("%-14s %-3s", with ? "" : name.c_str(),
                    with ? "w" : "w/o");
        for (const sat::SolverKind kind : kKinds) {
            Cell cell;
            std::vector<SolveOutcome> outcomes;
            for (const auto& problem : problems) {
                const Result<SolveOutcome> run =
                    solve(problem, make_config(kind, with, scale));
                if (!run.ok()) {
                    // Score the failure as unsolved so it penalises the
                    // cell's PAR-2 instead of flattering it.
                    std::fprintf(stderr, "c solve error: %s\n",
                                 run.status().to_string().c_str());
                    outcomes.emplace_back();
                    continue;
                }
                outcomes.push_back(*run);
                if (run->result == sat::Result::kSat) ++cell.solved_sat;
                if (run->result == sat::Result::kUnsat) ++cell.solved_unsat;
            }
            cell.par2 = par2_score(outcomes, scale.timeout_s);
            if (cell.solved_unsat > 0) {
                std::printf("  %8.1f (%2zu+%zu)", cell.par2, cell.solved_sat,
                            cell.solved_unsat);
            } else {
                std::printf("  %8.1f (%2zu)  ", cell.par2, cell.solved_sat);
            }
        }
        std::printf("\n");
    }
}

inline void print_header(const char* title, const BenchScale& scale) {
    std::printf("=== %s ===\n", title);
    std::printf("instances per class: %zu, timeout: %.0fs (paper: 5000s; "
                "PAR-2 = solved runtimes + 2x timeout per unsolved)\n",
                scale.instances, scale.timeout_s);
    std::printf("%-14s %-3s  %-15s  %-15s  %-15s\n", "class", "", "minisat-like",
                "lingeling-like", "cms-like");
}

}  // namespace bosphorus::bench
